"""The PRIMA facade: one object wiring all kernel layers together.

The conceptually simplest system structure uses PRIMA without additional
components as a 'complete' DBMS: the services at the MAD interface are
directly made available to its users (paper, section 4).  :class:`Prima`
is that configuration — storage system, access system, and data system
stacked per Fig. 3.1, plus the LDL entry point for the administrator.

Quickstart — the prepared query surface::

    >>> with Prima() as db:
    ...     _ = db.execute("CREATE ATOM_TYPE city (city_id: IDENTIFIER, "
    ...                    "name: CHAR_VAR, pop: INTEGER) KEYS_ARE (name)")
    ...     _ = db.execute("INSERT city (name = ?, pop = ?)",
    ...                    "Kaiserslautern", 99000)
    ...     stmt = db.prepare("SELECT ALL FROM city WHERE name = ?")
    ...     len(stmt.execute("Kaiserslautern"))
    1

``prepare(mql)`` parses, validates, and plans **once**; every
``stmt.execute(*args, **params)`` binds the ``?`` positional / ``:name``
named placeholder values at pipeline-open time and runs the pre-built
plan — zero per-call frontend cost, while a prepared ``WHERE key = ?``
keeps the exact KEYS_ARE/B*-tree access path (and a prepared ``ORDER BY
... LIMIT ?`` still fuses into TopK with dynamic bound pushdown) the
literal form gets.  Even *unprepared* repeated text is cheap: a shared,
catalog-versioned plan cache sits under ``query()``/``execute()``, the
serving sessions, and ``parallel_select``, so re-sent statement text
skips parse+plan (``plan_cache_hits`` in :meth:`Prima.io_report`).  DDL
and LDL tuning-structure changes bump the catalog version, and every
cached/prepared plan transparently re-validates instead of running
stale.

``query()`` is the read-path alias of :meth:`Prima.execute` (and
``stream`` is the same cursor-flavoured entry point): SELECTs always
return a **lazy** :class:`~repro.data.result.ResultSet` cursor over the
compiled operator pipeline — molecules are constructed as they are
pulled, and ``close()`` cancels remaining work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.access.integrity import Violation, verify_database
from repro.access.system import AccessSystem
from repro.data.executor import DataSystem
from repro.data.prepared import PreparedStatement
from repro.data.result import ResultSet
from repro.data.validation import MoleculeTypeCatalog
from repro.errors import PrimaError
from repro.ldl.executor import LdlExecutor
from repro.mad.schema import Schema
from repro.mad.types import Surrogate
from repro.mql.parser import parse_script
from repro.storage.disk import DiskGeometry
from repro.storage.system import StorageSystem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve import SessionManager


class Prima:
    """A complete single-user PRIMA instance."""

    def __init__(self, buffer_capacity: int = 256 * 8192,
                 policy: str = "modified-lru",
                 partitioned_buffer: bool = False,
                 geometry: DiskGeometry | None = None) -> None:
        self.storage = StorageSystem(
            buffer_capacity=buffer_capacity, policy=policy,
            partitioned=partitioned_buffer, geometry=geometry,
        )
        self.schema = Schema()
        self.access = AccessSystem(self.storage, self.schema)
        self.catalog = MoleculeTypeCatalog()
        self.data = DataSystem(self.access, self.catalog)
        self.ldl = LdlExecutor(self.access, self.data.validator)
        #: Network accounting of attached serving endpoints (see
        #: :meth:`attach_network`); summed into :meth:`io_report`.
        self._network_stats: list[Any] = []
        #: Serving managers opened over this instance (see :meth:`serve`);
        #: their per-session counters reset with :meth:`reset_accounting`.
        self._session_managers: list["SessionManager"] = []

    # -- MQL ----------------------------------------------------------------------

    def prepare(self, mql: str) -> PreparedStatement:
        """Parse, validate, and plan one statement **once**.

        The returned :class:`~repro.data.prepared.PreparedStatement`
        re-executes with fresh placeholder bindings and zero per-call
        frontend work::

            stmt = db.prepare("SELECT ALL FROM city WHERE name = ?")
            stmt.execute("Kaiserslautern")
            stmt.execute("Brighton")          # no parse, no plan

        ``?`` placeholders bind positionally (``execute(v1, v2)``),
        ``:name`` placeholders by keyword (``execute(name=v)``).  DDL or
        LDL changes between executions transparently re-plan (the
        catalog-version stamp), never run stale.
        """
        return self.data.prepare(mql)

    def execute(self, mql: str, *args: Any, use_cache: bool = True,
                **params: Any) -> ResultSet:
        """Execute one MQL statement, optionally binding parameters.

        Statement text is prepared through the shared plan cache —
        repeated (whitespace-normalized) SELECT text skips parse+plan
        entirely (``plan_cache_hits``); ``use_cache=False`` forces a
        fresh parse+plan (the re-parse baseline of the benchmarks).
        Positional ``?`` placeholders bind from ``*args``, named
        ``:name`` placeholders from ``**params``.

        SELECTs return a **lazy** :class:`ResultSet`: a cursor over the
        compiled operator pipeline that constructs molecules as they
        are pulled (``for m in result``); ``len()``/indexing/
        ``fetch_next()`` materialise on demand and ``close()`` cancels
        the remaining work deterministically (the paper's
        one-molecule-at-a-time MAD interface contract).
        """
        return self.data.execute_text(mql, args, params,
                                      use_cache=use_cache)

    #: Read-path aliases of :meth:`execute` (one implementation — the
    #: historic ``query``/``stream`` split was duplication): ``query``
    #: reads best in application code, ``stream`` where the cursor
    #: nature matters.
    query = execute
    stream = execute

    def execute_script(self, mql: str) -> list[ResultSet]:
        """Parse and execute a ';'-separated MQL script.

        Each SELECT is drained before the next statement runs, so a later
        DML statement cannot mutate atoms under an open cursor.
        """
        results = []
        statements = parse_script(mql)
        self.access.counters.bump("statements_parsed", len(statements))
        for statement in statements:
            result = self.data.execute(statement)
            result.materialize()
            results.append(result)
        return results

    def explain(self, mql: str, *args: Any, analyze: bool = False,
                **params: Any) -> str:
        """The processing plan of a SELECT (through the plan cache).

        With ``analyze=False`` (the default) the plan is rendered without
        executing anything — a parameterized statement renders its
        *template* with ``?n`` / ``:name`` markers unless bindings are
        given.  With ``analyze=True`` the compiled pipeline is executed
        to exhaustion and the rendered operator tree carries each
        operator's measured row count and self wall-time (the same
        quantities the ``operator_rows:*`` / ``operator_time:*`` counters
        accumulate in :meth:`io_report`); a parameterized statement then
        requires its bindings.
        """
        prepared = self.data.prepare(mql)
        if prepared.kind != "select":
            raise PrimaError("EXPLAIN supports SELECT statements only")
        return prepared.explain(analyze=analyze, args=args, params=params)

    def trace(self, mql: str, *args: Any, **params: Any):
        """Run a SELECT to exhaustion under a forced trace.

        Returns the root :class:`~repro.obs.trace.Span` of the query:
        its duration is the wall-time of the whole drain, its children
        are the operator spans (rows + self/total time per operator).
        The programmatic twin of ``explain(analyze=True)`` — and the
        engine half of the TRACE wire message.
        """
        prepared = self.data.prepare(mql)
        if prepared.kind != "select":
            raise PrimaError("TRACE supports SELECT statements only")
        return prepared.trace(args, params)

    # -- LDL ------------------------------------------------------------------------

    def execute_ldl(self, ldl: str) -> list[str]:
        """Execute a ';'-separated LDL script (tuning structures)."""
        self.data._ensure_symmetry()  # noqa: SLF001
        return self.ldl.execute_script(ldl)

    # -- programmatic atom access (the access-system interface) ----------------------

    def insert_atom(self, type_name: str,
                    values: dict[str, Any] | None = None) -> Surrogate:
        """Insert one atom directly (bypassing MQL).

        Direct mutations publish a new atom-version epoch, like DML —
        snapshots pinned before the call keep their state."""
        surrogate = self.access.insert(type_name, values)
        self.data.publish_data_version()
        return surrogate

    def get_atom(self, surrogate: Surrogate,
                 attrs: list[str] | None = None) -> dict[str, Any]:
        """Read one atom directly."""
        return self.access.get(surrogate, attrs)

    def modify_atom(self, surrogate: Surrogate,
                    values: dict[str, Any]) -> None:
        """Modify one atom directly (publishes an atom-version epoch)."""
        self.access.modify(surrogate, values)
        self.data.publish_data_version()

    def delete_atom(self, surrogate: Surrogate) -> None:
        """Delete one atom directly (publishes an atom-version epoch)."""
        self.access.delete(surrogate)
        self.data.publish_data_version()

    # -- serving ------------------------------------------------------------------------

    def serve(self, model=None, max_sessions: int = 8,
              admission: str = "reject",
              queue_timeout: float | None = None,
              fetch_size: int | str | None = None,
              parallel_mode: str = "threads",
              parallel_workers: int | None = None,
              idle_cursor_timeout: float | None = None,
              idle_statement_timeout: float | None = None,
              session_lease: float | None = None,
              clock=None):
        """A :class:`~repro.serve.SessionManager` over this instance.

        .. deprecated::
            As a *client* entry point this is superseded by
            :func:`repro.connect` — ``connect(db, **knobs)`` builds (or
            reuses) the manager *and* opens a session with one uniform
            API over every transport.  ``serve()`` remains as a thin
            shim for code that wants the bare manager (server-side
            plumbing, the daemon, benchmarks).

        The serving layer multiplexes many concurrent client sessions
        onto this PRIMA: each session gets its own transaction/lock
        scope, queries stream through remote cursors (OPEN / FETCH(n) /
        CLOSE over the coupling network's cost model, double-buffered),
        and admission control bounds concurrency.  Knobs:

        * ``max_sessions`` — concurrent-session bound;
        * ``admission`` — ``'reject'`` (raise at the limit) or
          ``'queue'`` (wait for a slot, optionally ``queue_timeout``);
        * ``fetch_size`` — default cursor batch size (None: whole set in
          the open response, the set-oriented one-message-pair mode;
          ``"auto"``: tuned per cursor from the network model against
          the measured molecule wire size, see :mod:`repro.serve.tuning`);
        * ``parallel_mode`` / ``parallel_workers`` — worker fabric and
          cap of :meth:`~repro.serve.Session.parallel_query`
          (``'threads'`` or ``'processes'``);
        * ``idle_cursor_timeout`` / ``idle_statement_timeout`` /
          ``session_lease`` — resource hygiene (seconds; None disables):
          reclaim idle cursors, idle statement handles, and whole
          sessions without message traffic (``clock`` injects a test
          clock; sweeps run via :meth:`SessionManager.reap`, which the
          daemon drives periodically);
        * ``model`` — the :class:`~repro.coupling.NetworkModel` billed.

        The manager's network counters surface in :meth:`io_report` as
        ``net_messages`` / ``net_bytes`` / ``net_comm_time_ms``.
        """
        from repro.serve import SessionManager
        return SessionManager(self, model=model, max_sessions=max_sessions,
                              admission=admission,
                              queue_timeout=queue_timeout,
                              default_fetch_size=fetch_size,
                              parallel_mode=parallel_mode,
                              parallel_workers=parallel_workers,
                              idle_cursor_timeout=idle_cursor_timeout,
                              idle_statement_timeout=idle_statement_timeout,
                              session_lease=session_lease,
                              clock=clock)

    def parallel_select(self, mql: str, processors: int = 4,
                        partitions: int | None = None,
                        max_workers: int | None = None,
                        mode: str = "threads", args: tuple = (),
                        params: dict[str, Any] | None = None):
        """Run one SELECT with semantic parallelism (see
        :func:`repro.parallel.parallel_select`).

        ``mode='threads'`` overlaps construction latency under the GIL;
        ``mode='processes'`` runs a ``fork``-based worker pool — each
        child constructs molecules against its inherited copy-on-write
        image of the engine (a natural snapshot), for real CPU
        parallelism on multi-core hosts.
        """
        from repro.parallel import parallel_select
        return parallel_select(self, mql, processors=processors,
                               partitions=partitions,
                               max_workers=max_workers, mode=mode,
                               args=args, params=params)

    def attach_network(self, stats) -> None:
        """Register a serving endpoint's :class:`NetworkStats` so its
        communication counters appear in :meth:`io_report`."""
        if stats not in self._network_stats:
            self._network_stats.append(stats)

    def attach_sessions(self, manager: "SessionManager") -> None:
        """Register a :class:`~repro.serve.SessionManager` opened over
        this instance, so :meth:`reset_accounting` also zeroes its
        per-session counters and :meth:`close` tears its sessions down."""
        if manager not in self._session_managers:
            self._session_managers.append(manager)

    # -- optimizer meta-data -----------------------------------------------------------

    def analyze(self, type_name: str | None = None) -> int:
        """Collect optimizer statistics (cardinalities, value ranges,
        association fan-outs); returns the atoms examined.  See
        :mod:`repro.data.statistics`."""
        return self.data.statistics.analyze(type_name)

    # -- introspection ----------------------------------------------------------------

    def dump_ddl(self) -> str:
        """Regenerate the MQL DDL of the current catalog (round-trips
        through the parser; see :mod:`repro.mad.ddl`)."""
        from repro.mad.ddl import dump_schema
        return dump_schema(self.schema, self.catalog)

    # -- persistence -------------------------------------------------------------------

    def save(self, path) -> int:
        """Checkpoint this instance to a file (see repro.persistence)."""
        from repro.persistence import save
        return save(self, path)

    @staticmethod
    def load(path) -> "Prima":
        """Restore a checkpointed instance (see repro.persistence)."""
        from repro.persistence import load
        return load(path)

    # -- maintenance ---------------------------------------------------------------------

    def commit(self) -> None:
        """Propagate deferred updates and flush dirty pages."""
        self.access.propagate_deferred()
        self.storage.flush()

    def close(self) -> None:
        """Shut the instance down: close attached serving sessions,
        flush via :meth:`commit`, and detach network/serving stats.

        Idempotent.  ``with Prima() as db:`` calls this on exit."""
        for manager in self._session_managers:
            manager.close_all()
        self.commit()
        self._session_managers.clear()
        self._network_stats.clear()

    def __enter__(self) -> "Prima":
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> None:
        self.close()

    def verify_integrity(self) -> list[Violation]:
        """Run the database-wide structural-integrity verification."""
        return verify_database(self.access.atoms)

    def io_report(self) -> dict[str, Any]:
        """Disk/buffer/access counters for benchmark reporting.

        When serving endpoints are attached (:meth:`attach_network`),
        their communication accounting is summed in as ``net_messages``,
        ``net_bytes`` and ``net_comm_time_ms`` — the coupling-network
        counters alongside the operator/scan counters.
        """
        report = dict(self.storage.io_report())
        report.update(self.access.counters.snapshot())
        if self._network_stats:
            messages = nbytes = 0
            comm_ms = 0.0
            for stats in self._network_stats:
                snapshot = stats.snapshot()
                messages += snapshot["messages"]
                nbytes += snapshot["bytes_sent"]
                comm_ms += snapshot["comm_time_ms"]
            report["net_messages"] = messages
            report["net_bytes"] = nbytes
            report["net_comm_time_ms"] = round(comm_ms, 3)
        return report

    @property
    def obs(self):
        """This engine's :class:`~repro.obs.Observability` bundle
        (tracer + metrics registry + slow log)."""
        return self.data.obs

    def metrics_report(self) -> dict[str, Any]:
        """The JSON-able metrics export: counters, gauges, histograms.

        ``counters`` is :meth:`io_report` (the paper's count
        quantities); ``gauges``/``histograms`` merge this engine's
        registry with the per-session registries of every attached
        serving manager — one view over engine, sessions, and daemon.
        The buffer hit ratio is sampled into its gauge (and its
        histogram) at report time.
        """
        registries = [self.data.obs.metrics]
        for manager in self._session_managers:
            registries.extend(manager.metric_registries())
        counters = self.io_report()
        fixes = counters.get("fixes", 0)
        if fixes:
            ratio = round(counters.get("hits", 0) / fixes, 4)
            self.data.obs.metrics.gauge("buffer_hit_ratio", ratio)
            self.data.obs.metrics.observe("buffer_hit_ratio", ratio)
        merged = registries[0].merge(*registries[1:])
        return {
            "counters": counters,
            "gauges": merged.gauges(),
            "histograms": merged.histograms(),
        }

    def reset_accounting(self) -> None:
        """Zero all counters (data is untouched).

        Besides the storage/access/network counters this also resets the
        per-session counters of every attached
        :class:`~repro.serve.SessionManager`, so benchmark phases over a
        serving setup start from zero."""
        self.storage.reset_accounting()
        self.access.counters.reset()
        self.data.obs.reset()
        for stats in self._network_stats:
            stats.reset()
        for manager in self._session_managers:
            manager.reset_accounting()
