"""The asyncio daemon: many concurrent clients, one event-loop thread.

The thread-per-session :class:`~repro.serve.loop.ServeLoop` burns one OS
thread per client; this daemon multiplexes every connection onto a
single event loop instead, so the server's thread count stays **O(1)**
no matter how many sessions are open (the property
``benchmarks/bench_b7_daemon.py`` gates on).  Per connection:

* a **reader coroutine** decodes length-prefixed frames into the typed
  requests of :mod:`repro.serve.protocol` and dispatches them inline to
  :meth:`repro.serve.Session.handle` — the same transport-agnostic entry
  the in-process transport calls, so billing and semantics are identical
  by construction;
* a **writer coroutine** drains a *bounded* ``asyncio.Queue`` of
  responses onto the socket.  The bound is the backpressure point: a
  client that stops reading fills its TCP window, the writer blocks in
  ``drain()``, the queue fills, and the reader stops accepting requests
  for that session — one slow client never grows server memory.

**Admission.**  The first frame must be HELLO.  The daemon admits via
the non-blocking :meth:`SessionManager.open_nowait` — with
``admission='queue'`` a full server *parks the coroutine* (cooperative
retry) instead of blocking a thread, honouring ``queue_timeout``; with
``'reject'`` the client gets :class:`~repro.errors.SessionLimitError`
as a :class:`~repro.serve.protocol.WireError` frame.

**Failure handling.**  A server-side :class:`~repro.errors.PrimaError`
becomes a WireError frame (the client re-raises it by class); an abrupt
EOF — client crashed mid-fetch — **aborts** the session, which closes
its cursors (truncating pending pipelines, running close-hooks, and
releasing pinned snapshots) and returns the admission slot.

**Hygiene.**  A periodic task calls :meth:`SessionManager.reap`, so
idle-cursor / idle-statement timeouts and session leases are enforced
without any client cooperation.

The daemon serialises molecules with pickle; like any pickle endpoint it
must only listen on trusted interfaces (default: loopback).
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
import threading
import time
from typing import TYPE_CHECKING

from repro.errors import ProtocolError, SessionError, SessionLimitError
from repro.serve import protocol
from repro.serve.aio import read_message, write_message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.connection import Connection
    from repro.serve.session import Session, SessionManager

#: Sentinel closing a connection's send queue.
_CLOSE = object()


class PrimaDaemon:
    """Serve a :class:`SessionManager` over a socket, asynchronously.

    One background thread runs the event loop; everything else — every
    client, the reaper, the acceptor — is a coroutine on it.  The
    listening socket is bound synchronously in ``__init__`` (so
    :attr:`address` is known before :meth:`start`, and the loop never
    needs resolver helper threads).

    ``send_queue`` bounds the per-connection response queue (the
    backpressure knob); ``reap_interval`` is the hygiene sweep period
    (defaults on when the manager has any timeout knob set);
    ``admission_poll`` is the cooperative retry period of queued
    admission.
    """

    def __init__(self, manager: "SessionManager", host: str = "127.0.0.1",
                 port: int = 0, *, backlog: int = 128, send_queue: int = 8,
                 reap_interval: float | None = None,
                 admission_poll: float = 0.005) -> None:
        if send_queue < 1:
            raise ValueError("send_queue must be >= 1")
        self.manager = manager
        self.send_queue = send_queue
        self.admission_poll = admission_poll
        if reap_interval is None and (
                manager.idle_cursor_timeout is not None
                or manager.idle_statement_timeout is not None
                or manager.session_lease is not None):
            timeouts = [t for t in (manager.idle_cursor_timeout,
                                    manager.idle_statement_timeout,
                                    manager.session_lease)
                        if t is not None]
            reap_interval = max(min(timeouts) / 4, 0.01)
        self.reap_interval = reap_interval
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self._sock.setblocking(False)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        #: Live connection tasks (cancelled on stop).
        self._connections: set[asyncio.Task] = set()
        #: Served-connection count (diagnostics).
        self.connections_served = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — valid immediately after
        construction."""
        host, port = self._sock.getsockname()[:2]
        return host, port

    def start(self) -> "PrimaDaemon":
        """Launch the event-loop thread and begin accepting."""
        if self._thread is not None:
            raise SessionError("daemon already started")
        if self._started.is_set():
            raise SessionError(
                "daemon cannot be restarted (its socket is closed); "
                "construct a new PrimaDaemon"
            )
        self._thread = threading.Thread(target=self._run,
                                        name="prima-daemon", daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup races
            self._startup_error = exc
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._serve_connection,
                                            sock=self._sock)
        reaper = (asyncio.ensure_future(self._reap_loop())
                  if self.reap_interval is not None else None)
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            if reaper is not None:
                reaper.cancel()
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(*self._connections,
                                     return_exceptions=True)

    def stop(self) -> None:
        """Stop accepting, cancel live connections (their sessions are
        aborted, releasing cursors and slots), and join the loop
        thread."""
        if self._thread is None or self._loop is None:
            return
        loop, stop = self._loop, self._stop
        try:
            loop.call_soon_threadsafe(stop.set)
        except RuntimeError:
            pass   # loop already ended (startup failure)
        self._thread.join()
        self._thread = None

    def connect(self, name: str | None = None,
                timeout: float | None = None) -> "Connection":
        """A blocking-socket :class:`Connection` to this daemon."""
        from repro.serve.connection import connect
        return connect(self.address, name=name, timeout=timeout)

    def __enter__(self) -> "PrimaDaemon":
        return self.start()

    def __exit__(self, _exc_type, _exc, _tb) -> None:
        self.stop()

    def __repr__(self) -> str:
        host, port = self.address
        state = "running" if self._thread is not None else "stopped"
        return f"PrimaDaemon({host}:{port}, {state})"

    # -- the per-connection protocol machine ---------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        self.connections_served += 1
        session: "Session | None" = None
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.send_queue)
        sender = asyncio.ensure_future(self._send_loop(queue, writer))
        try:
            session = await self._handshake(reader, queue)
            if session is not None:
                session.set_notify_sink(self._notify_sink(queue))
                await self._request_loop(session, reader, queue)
        except (ProtocolError, ConnectionError, asyncio.CancelledError):
            pass   # torn-down client; the finally block reclaims
        finally:
            # Whatever ended the conversation — GOODBYE (session already
            # closed), abrupt EOF, a protocol violation, daemon stop —
            # an open session is *aborted*: cursors close (pending
            # pipelines truncate, snapshots unpin) and the admission
            # slot returns.  The cleanup must tolerate re-delivered
            # cancellation (daemon stop cancels this very task), so the
            # task ends *finished*, not *cancelled* — a cancelled stream
            # task trips asyncio's connection_made error logger.
            if session is not None:
                # Stop push delivery into this dead queue first, then
                # abort (which also reclaims the subscription slots).
                session.set_notify_sink(None)
                if not session.closed:
                    session.abort()
            try:
                queue.put_nowait(_CLOSE)
            except asyncio.QueueFull:
                sender.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await sender
            writer.close()
            with contextlib.suppress(asyncio.CancelledError, OSError,
                                     ConnectionError):
                await writer.wait_closed()
            self._connections.discard(task)

    async def _handshake(self, reader: asyncio.StreamReader,
                         queue: asyncio.Queue) -> "Session | None":
        """First frame must be HELLO; admit (possibly queueing
        cooperatively) and answer with the Welcome."""
        first = await read_message(reader)
        if first is None:
            return None
        correlation = protocol.correlation_of(first)

        def stamped(message: protocol.Response) -> protocol.Response:
            if correlation is not None:
                protocol.set_correlation(message, correlation)
            return message

        if not isinstance(first, protocol.Hello):
            await queue.put(stamped(protocol.wire_error(ProtocolError(
                f"expected Hello, got {type(first).__name__}"))))
            return None
        try:
            session = await self._admit(first.client)
        except SessionLimitError as exc:
            await queue.put(stamped(protocol.wire_error(exc)))
            return None
        await queue.put(stamped(protocol.Welcome(
            session.name, self.manager.default_fetch_size,
            shards=getattr(self.manager.db, "shard_count", 1))))
        return session

    async def _admit(self, client: str | None) -> "Session":
        """Admission without blocking the loop: non-blocking open plus
        cooperative retry under the ``'queue'`` policy."""
        manager = self.manager
        try:
            return manager.open_nowait(client)
        except SessionLimitError:
            if manager.admission != "queue":
                raise
        manager.db.access.counters.bump("serve_sessions_queued")
        wait_started = time.perf_counter()
        deadline = (time.monotonic() + manager.queue_timeout
                    if manager.queue_timeout is not None else None)
        while True:
            await asyncio.sleep(self.admission_poll)
            try:
                session = manager.open_nowait(client)
                manager.metrics.observe(
                    "admission_wait_ms",
                    (time.perf_counter() - wait_started) * 1000.0)
                return session
            except SessionLimitError:
                if deadline is not None and time.monotonic() >= deadline:
                    raise SessionLimitError(
                        f"queued session timed out after "
                        f"{manager.queue_timeout}s (max_sessions="
                        f"{manager.max_sessions})"
                    ) from None

    async def _request_loop(self, session: "Session",
                            reader: asyncio.StreamReader,
                            queue: asyncio.Queue) -> None:
        """Decode → dispatch → enqueue, until GOODBYE or EOF.

        Dispatch runs inline on the loop thread: the engine work of one
        message is CPU-bound under the GIL anyway, so handing it to a
        thread pool would re-grow the thread count this daemon exists to
        flatten.  Concurrency happens *between* messages of different
        connections, which is exactly the granularity the per-session
        lock serialises anyway."""
        while True:
            request = await read_message(reader)
            if request is None:
                # Abrupt EOF (no GOODBYE): the finally block aborts.
                return
            try:
                response = session.handle(request)
            except Exception as exc:  # noqa: BLE001 - shipped to client
                response = protocol.wire_error(exc)
            # Echo the request's correlation id so the client can pick
            # its reply out of a stream that also carries unsolicited
            # NOTIFY frames (which never have one).
            correlation = protocol.correlation_of(request)
            if correlation is not None:
                protocol.set_correlation(response, correlation)
            await queue.put(response)
            if isinstance(request, protocol.Goodbye) and session.closed:
                return

    async def _send_loop(self, queue: asyncio.Queue,
                         writer: asyncio.StreamWriter) -> None:
        """Drain the bounded response queue onto the socket.

        After a send failure (client gone) the loop keeps *discarding*
        until the close sentinel: the reader coroutine must never block
        on a full queue whose consumer died — it has to reach its own
        EOF and reclaim the session."""
        failed = False
        metrics = self.manager.metrics
        while True:
            message = await queue.get()
            # Depth *after* taking this message: 0 means the writer is
            # keeping up, near ``send_queue`` means backpressure.
            metrics.observe("send_queue_depth", queue.qsize())
            if message is _CLOSE:
                return
            if failed:
                continue
            try:
                await write_message(writer, message)
            except (ConnectionError, OSError):
                failed = True

    # -- server push ---------------------------------------------------------

    def _notify_sink(self, queue: asyncio.Queue):
        """A thread-safe push sink for one connection's session.

        The notifier runs on engine threads; the send queue belongs to
        the event loop.  The handoff is ``call_soon_threadsafe`` into a
        non-blocking put — a full queue (client not reading) **drops**
        the NOTIFY rather than ever blocking a committing thread, and
        the drop is counted.  Returns True optimistically: the enqueue
        outcome is only known on the loop thread."""
        loop = self._loop

        def sink(message: protocol.Notify) -> bool:
            if loop is None or loop.is_closed():
                return False
            try:
                loop.call_soon_threadsafe(self._push_notify, queue,
                                          message)
            except RuntimeError:    # loop shut down mid-handoff
                return False
            return True

        return sink

    def _push_notify(self, queue: asyncio.Queue,
                     message: protocol.Notify) -> None:
        try:
            queue.put_nowait(message)
        except asyncio.QueueFull:
            self.manager.db.access.counters.bump(
                "serve_notifications_dropped")

    # -- hygiene -------------------------------------------------------------

    async def _reap_loop(self) -> None:
        """Periodic :meth:`SessionManager.reap` sweep.

        The sweep doubles as the event loop's health probe: the
        difference between the intended and the actual sleep is the
        loop's scheduling lag — inline dispatch hogging the loop shows
        up here as ``event_loop_lag_ms``."""
        while True:
            before = time.perf_counter()
            await asyncio.sleep(self.reap_interval)
            lag_ms = (time.perf_counter() - before
                      - self.reap_interval) * 1000.0
            self.manager.metrics.observe("event_loop_lag_ms",
                                         max(lag_ms, 0.0))
            self.manager.reap()


def serve_daemon(manager: "SessionManager", host: str = "127.0.0.1",
                 port: int = 0, **options) -> PrimaDaemon:
    """Construct and start a :class:`PrimaDaemon` in one call."""
    return PrimaDaemon(manager, host, port, **options).start()
