"""The serve loop: many client jobs interleaved over one server.

``ServeLoop.run(jobs)`` plays the role of the server's dispatcher: every
job is a callable receiving its own freshly opened :class:`Session`, runs
on its own thread (capped by ``max_threads``), and its session is closed
— releasing cursors, locks and the admission slot — when the job
returns or raises.  Results come back **in job order**, so the outcome
is deterministic regardless of thread interleaving: sessions share the
engine at message granularity (the manager's engine lock), but each
session's cursor stream is private and ordered.

This is the synchronous, thread-per-session transport; the ROADMAP lists
an async/event-loop transport as the follow-up it prepares for.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import ServeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.session import Session, SessionManager


class ServeLoop:
    """Run client jobs concurrently, one session per job."""

    def __init__(self, manager: "SessionManager",
                 max_threads: int | None = None) -> None:
        if max_threads is not None and max_threads < 1:
            raise ValueError("max_threads must be >= 1")
        self.manager = manager
        self.max_threads = max_threads

    def run(self, jobs: Sequence[Callable[["Session"], Any]],
            names: Sequence[str] | None = None) -> list[Any]:
        """Execute every job against its own session; results in job order.

        Jobs are distributed round-robin over at most ``max_threads``
        threads (default: one thread per job).  Each thread opens its
        session *inside* the job loop, so admission control applies: with
        ``admission='queue'`` a loop wider than ``max_sessions`` simply
        waits for slots; with ``'reject'`` it surfaces
        :class:`~repro.errors.SessionLimitError` like any other job
        failure.  Failures are collected from *every* thread (their
        sessions are always closed): one failing job re-raises its
        exception directly, several raise a
        :class:`~repro.errors.ServeError` aggregating all of them in
        deterministic job order — concurrent failures are no longer
        silently dropped behind the first.
        """
        if names is not None and len(names) != len(jobs):
            raise ValueError("names must match jobs one-to-one")
        if not jobs:
            return []
        results: list[Any] = [None] * len(jobs)
        failures: list[tuple[int, BaseException]] = []
        thread_count = len(jobs) if self.max_threads is None \
            else min(self.max_threads, len(jobs))

        def drive(assigned: list[int]) -> None:
            for index in assigned:
                session = None
                try:
                    label = names[index] if names is not None else None
                    session = self.manager.open(name=label)
                    results[index] = jobs[index](session)
                except BaseException as exc:  # noqa: BLE001 - reraised below
                    failures.append((index, exc))
                finally:
                    if session is not None and not session.closed:
                        session.close()

        threads = [
            threading.Thread(target=drive,
                             args=(list(range(t, len(jobs), thread_count)),),
                             name=f"serve-loop-{t}", daemon=True)
            for t in range(thread_count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            failures.sort(key=lambda pair: pair[0])
            if len(failures) == 1:
                raise failures[0][1]
            raise ServeError(failures)
        return results
