"""Asyncio framing and the async client of the serving protocol.

The daemon (:mod:`repro.serve.daemon`) and the async client below speak
the exact same typed messages and length-prefixed frames as the blocking
:class:`~repro.serve.connection.SocketTransport` — the codec lives in
:mod:`repro.serve.protocol`; this module only adapts it to coroutines.

:class:`AsyncClient` is what lets one thread hold *many* concurrent
client conversations: every client is a coroutine awaiting its reply
frames, so a 64-client workload against the daemon is two event loops
(one client-side, one daemon-side) rather than 64 threads.  Open clients
with :func:`open_client`; addresses should be numeric (``127.0.0.1``) —
asyncio resolves numeric hosts inline, keeping the no-helper-threads
property measurable.
"""

from __future__ import annotations

import asyncio

from repro.errors import ProtocolError, SessionError
from repro.serve import protocol

__all__ = ["AsyncClient", "open_client", "read_message", "write_message"]


async def read_message(
        reader: asyncio.StreamReader) -> protocol.Request | \
        protocol.Response | None:
    """Read one framed message (None at a clean EOF on a frame
    boundary; mid-frame EOF raises :class:`ProtocolError`)."""
    try:
        header = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from exc
    try:
        payload = await reader.readexactly(protocol.frame_length(header))
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return protocol.decode(payload)


async def write_message(writer: asyncio.StreamWriter,
                        message: protocol.Request | protocol.Response
                        ) -> None:
    """Write one framed message and drain (the backpressure point)."""
    writer.write(protocol.pack_frame(protocol.encode(message)))
    await writer.drain()


class AsyncClient:
    """One asynchronous client session against the daemon.

    Strictly request/response (like the blocking transport), so requests
    of one client are serialised by an ``asyncio.Lock`` — concurrency
    comes from many clients interleaving on the loop, not from
    pipelining within one.  Server errors re-raise under their original
    :mod:`repro.errors` classes.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        self._closed = False
        self._next_correlation = 0
        #: The server-assigned session label (set by :meth:`hello`).
        self.session: str | None = None
        #: The server's default fetch-size knob (from the Welcome).
        self.default_fetch_size: int | str | None = None
        #: Unsolicited NOTIFY frames (live queries) skimmed off the
        #: stream; consumed by :meth:`next_notification` /
        #: :meth:`notifications`.
        self._notifications: asyncio.Queue = asyncio.Queue()
        #: Optional push callback: ``on_notify(frame)`` runs (on the
        #: event loop) for every skimmed NOTIFY, *in addition to* the
        #: queue.
        self.on_notify = None

    def _stash_push(self, frame: protocol.Notify) -> None:
        self._notifications.put_nowait(frame)
        if self.on_notify is not None:
            self.on_notify(frame)

    @staticmethod
    def _is_push(message: protocol.Response) -> bool:
        return isinstance(message, protocol.Notify) and \
            protocol.correlation_of(message) is None

    async def request(self, message: protocol.Request) -> protocol.Response:
        """One exchange: send the request, await its reply.

        The stream may interleave unsolicited NOTIFY frames (live
        queries); they are skimmed into :attr:`_notifications` by
        correlation id — the reply is the frame echoing this request's
        id, wherever it lands in the interleaving."""
        async with self._lock:
            if self._closed:
                raise SessionError("async client transport is closed")
            self._next_correlation += 1
            correlation = self._next_correlation
            protocol.set_correlation(message, correlation)
            await write_message(self._writer, message)
            while True:
                reply = await read_message(self._reader)
                if reply is None:
                    break
                if self._is_push(reply):
                    self._stash_push(reply)
                    continue
                break
        if reply is None:
            raise ProtocolError("server closed the connection mid-exchange")
        echoed = protocol.correlation_of(reply)
        if echoed is not None and echoed != correlation:
            raise ProtocolError(
                f"out-of-order reply: sent correlation #{correlation}, "
                f"received #{echoed}"
            )
        if isinstance(reply, protocol.WireError):
            protocol.raise_wire_error(reply)
        return reply

    async def hello(self, client: str | None = None) -> protocol.Welcome:
        """Open the session (admission control applies; a queued HELLO
        resolves when a slot frees)."""
        welcome = await self.request(protocol.Hello(client=client))
        if not isinstance(welcome, protocol.Welcome):
            raise ProtocolError(
                f"expected Welcome, got {type(welcome).__name__}"
            )
        self.session = welcome.session
        self.default_fetch_size = welcome.default_fetch_size
        return welcome

    # -- live queries --------------------------------------------------------

    async def subscribe(self, mql: str, args: tuple = (),
                        params: dict | None = None,
                        deliver: str = "notify",
                        ) -> protocol.SubscribeReply:
        """SUBSCRIBE a SELECT for server push; consume the frames with
        :meth:`next_notification` / ``async for`` :meth:`notifications`
        (or set :attr:`on_notify`)."""
        reply = await self.request(
            protocol.Subscribe(mql, args, params, deliver))
        if not isinstance(reply, protocol.SubscribeReply):
            raise ProtocolError(
                f"expected SubscribeReply, got {type(reply).__name__}"
            )
        return reply

    async def unsubscribe(self, subscription_id: int) -> None:
        """UNSUBSCRIBE one live query (idempotent)."""
        await self.request(protocol.Unsubscribe(subscription_id))

    async def next_notification(self, timeout: float | None = None,
                                ) -> protocol.Notify:
        """Await the next NOTIFY frame — skimmed during an earlier
        request, or read directly off the idle stream.

        Raises :class:`asyncio.TimeoutError` when ``timeout`` (seconds)
        elapses first."""

        async def _next() -> protocol.Notify:
            while True:
                # Anything already skimmed wins; otherwise read the
                # stream (the request lock keeps this from racing an
                # in-flight exchange).
                try:
                    return self._notifications.get_nowait()
                except asyncio.QueueEmpty:
                    pass
                async with self._lock:
                    try:
                        return self._notifications.get_nowait()
                    except asyncio.QueueEmpty:
                        pass
                    if self._closed:
                        raise SessionError(
                            "async client transport is closed")
                    frame = await read_message(self._reader)
                if frame is None:
                    raise ProtocolError(
                        "server closed the connection while awaiting "
                        "notifications")
                if not self._is_push(frame):
                    raise ProtocolError(
                        f"unsolicited {type(frame).__name__} frame "
                        f"outside any request exchange")
                if self.on_notify is not None:
                    self.on_notify(frame)
                return frame

        if timeout is None:
            return await _next()
        return await asyncio.wait_for(_next(), timeout)

    async def notifications(self):
        """An async iterator over incoming NOTIFY frames::

            async for frame in client.notifications():
                ...
        """
        while True:
            yield await self.next_notification()

    async def goodbye(self, abort: bool = False) -> None:
        """End the session cleanly (``abort=True`` rolls it back)."""
        await self.request(protocol.Goodbye(abort=abort))

    async def close(self) -> None:
        """Drop the transport (without GOODBYE: the server aborts the
        session on the EOF — the abrupt-disconnect path)."""
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (OSError, ConnectionError):
            pass

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is None and not self._closed:
            try:
                await self.goodbye()
            except (SessionError, ProtocolError, OSError):
                pass
        await self.close()


async def open_client(host: str, port: int,
                      client: str | None = None) -> AsyncClient:
    """Connect to a daemon and complete the HELLO exchange."""
    reader, writer = await asyncio.open_connection(host, port)
    async_client = AsyncClient(reader, writer)
    try:
        await async_client.hello(client)
    except BaseException:
        await async_client.close()
        raise
    return async_client
