"""Asyncio framing and the async client of the serving protocol.

The daemon (:mod:`repro.serve.daemon`) and the async client below speak
the exact same typed messages and length-prefixed frames as the blocking
:class:`~repro.serve.connection.SocketTransport` — the codec lives in
:mod:`repro.serve.protocol`; this module only adapts it to coroutines.

:class:`AsyncClient` is what lets one thread hold *many* concurrent
client conversations: every client is a coroutine awaiting its reply
frames, so a 64-client workload against the daemon is two event loops
(one client-side, one daemon-side) rather than 64 threads.  Open clients
with :func:`open_client`; addresses should be numeric (``127.0.0.1``) —
asyncio resolves numeric hosts inline, keeping the no-helper-threads
property measurable.
"""

from __future__ import annotations

import asyncio

from repro.errors import ProtocolError, SessionError
from repro.serve import protocol

__all__ = ["AsyncClient", "open_client", "read_message", "write_message"]


async def read_message(
        reader: asyncio.StreamReader) -> protocol.Request | \
        protocol.Response | None:
    """Read one framed message (None at a clean EOF on a frame
    boundary; mid-frame EOF raises :class:`ProtocolError`)."""
    try:
        header = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from exc
    try:
        payload = await reader.readexactly(protocol.frame_length(header))
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return protocol.decode(payload)


async def write_message(writer: asyncio.StreamWriter,
                        message: protocol.Request | protocol.Response
                        ) -> None:
    """Write one framed message and drain (the backpressure point)."""
    writer.write(protocol.pack_frame(protocol.encode(message)))
    await writer.drain()


class AsyncClient:
    """One asynchronous client session against the daemon.

    Strictly request/response (like the blocking transport), so requests
    of one client are serialised by an ``asyncio.Lock`` — concurrency
    comes from many clients interleaving on the loop, not from
    pipelining within one.  Server errors re-raise under their original
    :mod:`repro.errors` classes.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        self._closed = False
        #: The server-assigned session label (set by :meth:`hello`).
        self.session: str | None = None
        #: The server's default fetch-size knob (from the Welcome).
        self.default_fetch_size: int | str | None = None

    async def request(self, message: protocol.Request) -> protocol.Response:
        """One exchange: send the request, await its reply."""
        async with self._lock:
            if self._closed:
                raise SessionError("async client transport is closed")
            await write_message(self._writer, message)
            reply = await read_message(self._reader)
        if reply is None:
            raise ProtocolError("server closed the connection mid-exchange")
        if isinstance(reply, protocol.WireError):
            protocol.raise_wire_error(reply)
        return reply

    async def hello(self, client: str | None = None) -> protocol.Welcome:
        """Open the session (admission control applies; a queued HELLO
        resolves when a slot frees)."""
        welcome = await self.request(protocol.Hello(client=client))
        if not isinstance(welcome, protocol.Welcome):
            raise ProtocolError(
                f"expected Welcome, got {type(welcome).__name__}"
            )
        self.session = welcome.session
        self.default_fetch_size = welcome.default_fetch_size
        return welcome

    async def goodbye(self, abort: bool = False) -> None:
        """End the session cleanly (``abort=True`` rolls it back)."""
        await self.request(protocol.Goodbye(abort=abort))

    async def close(self) -> None:
        """Drop the transport (without GOODBYE: the server aborts the
        session on the EOF — the abrupt-disconnect path)."""
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (OSError, ConnectionError):
            pass

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is None and not self._closed:
            try:
                await self.goodbye()
            except (SessionError, ProtocolError, OSError):
                pass
        await self.close()


async def open_client(host: str, port: int,
                      client: str | None = None) -> AsyncClient:
    """Connect to a daemon and complete the HELLO exchange."""
    reader, writer = await asyncio.open_connection(host, port)
    async_client = AsyncClient(reader, writer)
    try:
        await async_client.hello(client)
    except BaseException:
        await async_client.close()
        raise
    return async_client
