"""One client API over every transport: :func:`connect` and
:class:`Connection`.

The serving layer grew three generations of entry points — direct
:class:`~repro.serve.SessionManager` construction, ``Prima.serve()``,
and the coupling façades — each exposing a slightly different client
surface.  This module collapses them: :func:`connect` takes *anything
serveable* (nothing, a :class:`~repro.db.Prima`, a manager, a daemon, a
``host:port`` address) and returns a :class:`Connection` whose API is
**identical regardless of transport**, because every method is one typed
request of :mod:`repro.serve.protocol` pushed through a transport:

* **in process** — :class:`LocalTransport` hands the message straight to
  :meth:`repro.serve.Session.handle`;
* **over a socket** — :class:`SocketTransport` frames the same message
  onto a blocking socket against the asyncio daemon
  (:mod:`repro.serve.daemon`), and re-raises server errors under their
  original :mod:`repro.errors` classes.

Both transports are billed through the same codec
(:func:`repro.serve.protocol.wire_size`), so ``io_report`` counters are
transport-invariant — the parity the daemon test suite asserts.

Usage::

    import repro

    with repro.connect() as conn:                 # owns a fresh Prima
        conn.execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, "
                     "n: INTEGER)")
        conn.execute("INSERT part (n = 1)")
        for molecule in conn.query("SELECT ALL FROM part"):
            ...

    with repro.connect(db) as conn:               # serve an existing db
        ...

    with repro.connect("prima://127.0.0.1:5432") as conn:   # a daemon
        ...
"""

from __future__ import annotations

import select
import socket as _socket
import threading
import time
from collections import deque
from typing import Any, Callable

from repro.data.result import ResultSet
from repro.errors import ProtocolError, SessionError
from repro.mad.molecule import Molecule
from repro.mad.types import Surrogate
from repro.serve import protocol
from repro.serve.cursor import RemoteCursor
from repro.serve.session import (
    DEFAULT_FETCH_SIZE,
    RemotePreparedStatement,
    Session,
    SessionManager,
    _wire_fetch_size,
)


class LocalTransport:
    """In-process transport: requests go straight to
    :meth:`Session.handle`; exceptions propagate natively."""

    __slots__ = ("session",)

    def __init__(self, session: Session) -> None:
        self.session = session

    def request(self, message: protocol.Request) -> protocol.Response:
        return self.session.handle(message)

    def close(self) -> None:
        """Nothing to release: the session owns the resources."""


class SocketTransport:
    """Blocking-socket transport against the asyncio daemon.

    Requests are serialised by a lock (the protocol is strictly
    request/response per session, exactly like the per-session lock
    server-side), but the byte stream is no longer purely
    request/response: the server may interleave unsolicited
    :class:`~repro.serve.protocol.Notify` frames (live queries) at any
    frame boundary.  Every request is therefore stamped with a
    **correlation id** which the daemon echoes onto the matching reply;
    :meth:`request` skims correlation-free Notify frames into a local
    queue until the correlated reply arrives — a push can never be
    mistaken for a reply, no matter how the frames interleave.  A
    :class:`WireError` response is re-raised under its original
    exception class, so admission rejects, truncation errors and
    friends keep their types across the wire.
    """

    def __init__(self, sock: _socket.socket) -> None:
        self._sock = sock
        self._lock = threading.Lock()
        self._closed = False
        self._next_correlation = 0
        #: Unsolicited Notify frames skimmed off the stream, in arrival
        #: order; drained by :meth:`poll_notifications`.
        self._notifications: deque[protocol.Notify] = deque()

    def request(self, message: protocol.Request) -> protocol.Response:
        with self._lock:
            if self._closed:
                raise SessionError("connection transport is closed")
            self._next_correlation += 1
            correlation = self._next_correlation
            protocol.set_correlation(message, correlation)
            protocol.send_message(self._sock, message)
            while True:
                reply = protocol.recv_message(self._sock)
                if reply is None:
                    break
                if self._is_push(reply):
                    self._notifications.append(reply)
                    continue
                break
        if reply is None:
            raise ProtocolError("server closed the connection mid-exchange")
        echoed = protocol.correlation_of(reply)
        if echoed is not None and echoed != correlation:
            raise ProtocolError(
                f"out-of-order reply: sent correlation #{correlation}, "
                f"received #{echoed}"
            )
        if isinstance(reply, protocol.WireError):
            protocol.raise_wire_error(reply)
        return reply

    @staticmethod
    def _is_push(message: protocol.Response) -> bool:
        return isinstance(message, protocol.Notify) and \
            protocol.correlation_of(message) is None

    def poll_notifications(self, timeout: float = 0.0,
                           ) -> list[protocol.Notify]:
        """Drain skimmed Notify frames, then read further pushes off
        the socket for up to ``timeout`` seconds (0: only what is
        already buffered).  Returns the frames in arrival order."""
        out: list[protocol.Notify] = []
        deadline = time.monotonic() + max(timeout, 0.0)
        with self._lock:
            while self._notifications:
                out.append(self._notifications.popleft())
            if self._closed:
                return out
            while True:
                # Once something is in hand, only sweep up frames that
                # are already readable — never wait out the full budget.
                wait = 0.0 if out else max(deadline - time.monotonic(), 0.0)
                ready, _, _ = select.select([self._sock], [], [], wait)
                if not ready:
                    if out or time.monotonic() >= deadline:
                        return out
                    continue
                # The frame has started arriving; the daemon writes
                # frames contiguously, so a blocking read completes it.
                reply = protocol.recv_message(self._sock)
                if reply is None:
                    return out          # EOF — close() will report it
                if not self._is_push(reply):
                    raise ProtocolError(
                        f"unsolicited {type(reply).__name__} frame "
                        f"outside any request exchange"
                    )
                out.append(reply)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._sock.shutdown(_socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()


class Connection:
    """One client connection to a PRIMA server — any transport.

    Obtained from :func:`connect` (or :meth:`PrimaDaemon.connect
    <repro.serve.daemon.PrimaDaemon.connect>`); every method is one
    protocol exchange:

    * :meth:`cursor` / :meth:`query` — OPEN a streaming cursor / a lazy
      :class:`ResultSet` over it;
    * :meth:`prepare` — PREPARE a server-side statement handle;
    * :meth:`execute` — one-shot statement (the server routes SELECT to
      a cursor, DML to a subtransaction);
    * :meth:`explain` — the server-rendered processing plan;
    * :meth:`checkout` / :meth:`checkin` — the coupling protocol: a
      checkout stream filling an object buffer via ``on_arrival``, and
      the one-message-pair application of buffered modifications;
    * :meth:`ping` — keepalive, refreshing the session lease.

    ``close(abort=True)`` rolls the session's transaction back instead
    of committing it; the context manager does this automatically when
    the body raises.
    """

    def __init__(self, transport, name: str,
                 default_fetch_size: int | str | None = None, *,
                 session: Session | None = None,
                 manager: SessionManager | None = None,
                 owned_db: Any | None = None, shards: int = 1) -> None:
        self._transport = transport
        #: The server-assigned session label.
        self.name = name
        #: The server's default fetch-size knob (int, None, or "auto").
        self.default_fetch_size = default_fetch_size
        #: Shard count of the served database (1: a single engine) —
        #: from the Welcome handshake, so socket clients know too.
        self.shards = shards
        #: The underlying :class:`Session` — in-process transports only
        #: (None over a socket; the session lives in the daemon).
        self.session = session
        #: The serving :class:`SessionManager` — in-process only.
        self.manager = manager
        self._owned_db = owned_db
        self._closed = False

    # -- queries -------------------------------------------------------------

    def cursor(self, mql: str, fetch_size: Any = DEFAULT_FETCH_SIZE,
               on_arrival: Callable[[Molecule], None] | None = None,
               args: tuple = (),
               params: dict[str, Any] | None = None) -> RemoteCursor:
        """OPEN a remote streaming cursor over ``mql``.

        ``fetch_size=None`` ships the whole set in the open response; an
        integer streams batches of that size with one-batch prefetch;
        ``"auto"`` lets the server tune the batch size from its network
        model (the resolved size is :attr:`RemoteCursor.fetch_size`).
        """
        self._require_open()
        reply = self._transport.request(protocol.Open(
            mql, _wire_fetch_size(fetch_size), args, params))
        return RemoteCursor(self._transport, reply, on_arrival=on_arrival)

    def query(self, mql: str, fetch_size: Any = DEFAULT_FETCH_SIZE,
              on_arrival: Callable[[Molecule], None] | None = None,
              args: tuple = (),
              params: dict[str, Any] | None = None) -> ResultSet:
        """A lazy :class:`ResultSet` streaming over a remote cursor."""
        cursor = self.cursor(mql, fetch_size=fetch_size,
                             on_arrival=on_arrival, args=args, params=params)
        return ResultSet(source=cursor, plan_text=cursor.plan_text)

    def prepare(self, mql: str) -> RemotePreparedStatement:
        """PREPARE ``mql`` server-side; the text ships exactly once."""
        self._require_open()
        reply = self._transport.request(protocol.Prepare(mql))
        return RemotePreparedStatement(self._transport, reply)

    def execute(self, mql: str, *args: Any, **params: Any) -> ResultSet:
        """Execute one statement; the server routes SELECT to a
        default-sized cursor, DML to a subtransaction."""
        self._require_open()
        reply = self._transport.request(
            protocol.Execute(mql, args, params or None))
        if isinstance(reply, protocol.OpenReply):
            cursor = RemoteCursor(self._transport, reply)
            return ResultSet(source=cursor, plan_text=cursor.plan_text)
        return ResultSet(molecules=reply.molecules, affected=reply.affected,
                         inserted=reply.inserted)

    def explain(self, mql: str, *args: Any, **params: Any) -> str:
        """The server-side processing plan of ``mql``."""
        self._require_open()
        return self._transport.request(
            protocol.Explain(mql, args, params or None)).text

    # -- observability -------------------------------------------------------

    def server_stats(self, reset: bool = False) -> dict[str, Any]:
        """The server's observability export, over any transport.

        One STATS message pair: ``{"metrics": metrics_report(),
        "slowlog": [...]}`` — counters, gauges and histograms in the
        same schema whether this connection is in-process or a socket
        (the parity the observability tests assert).  ``reset=True``
        zeroes the server-side metrics and slow log after the read.
        """
        self._require_open()
        reply = self._transport.request(protocol.Stats(reset))
        return {"metrics": reply.metrics, "slowlog": reply.slowlog}

    def trace(self, mql: str, *args: Any, **params: Any) -> dict[str, Any]:
        """TRACE: run ``mql`` server-side under a forced trace.

        Returns ``{"text": rendered span tree, "tree": Span.to_dict()}``
        — per-shard child spans included when the server is a cluster.
        No cursor opens; the rows are drained server-side."""
        self._require_open()
        reply = self._transport.request(
            protocol.Trace(mql, args, params or None))
        return {"text": reply.text, "tree": reply.tree}

    # -- the coupling protocol -----------------------------------------------

    def checkout(self, mql: str, fetch_size: Any = DEFAULT_FETCH_SIZE,
                 on_arrival: Callable[[Molecule], None] | None = None,
                 args: tuple = (),
                 params: dict[str, Any] | None = None) -> RemoteCursor:
        """The checkout stream of the workstation coupling: a cursor
        whose molecules populate a local object buffer as they arrive
        (``on_arrival`` runs per molecule, before the caller pulls it).
        ``fetch_size=None`` is the paper's set-oriented one-message-pair
        checkout."""
        return self.cursor(mql, fetch_size=fetch_size,
                           on_arrival=on_arrival, args=args, params=params)

    def checkin(self, modifications: dict[Surrogate, dict[str, Any]],
                deletions: list[Surrogate] | None = None,
                creations: list[tuple[Surrogate, dict[str, Any]]] | None
                = None) -> dict[Surrogate, Surrogate]:
        """Apply an object buffer in one message pair; returns the
        temporary → real surrogate mapping of applied creations."""
        self._require_open()
        reply = self._transport.request(protocol.Checkin(
            modifications, deletions or [], creations or []))
        return reply.mapping

    # -- live queries --------------------------------------------------------

    def subscribe(self, mql: str, args: tuple = (),
                  params: dict[str, Any] | None = None,
                  deliver: str = "notify") -> "LiveSubscription":
        """SUBSCRIBE a SELECT for server push.

        The server extracts the query's dependency set from its plan;
        any later commit touching one of those types (or a DDL catalog
        bump) pushes a NOTIFY frame — poll :meth:`notifications` for
        them.  ``deliver="requery"`` additionally re-runs the statement
        against a fresh snapshot on every fire and ships the new result
        in the frame."""
        self._require_open()
        reply = self._transport.request(
            protocol.Subscribe(mql, args, params, deliver))
        return LiveSubscription(self, reply)

    def unsubscribe(self, subscription_id: int) -> None:
        """UNSUBSCRIBE one live query (idempotent)."""
        self._require_open()
        self._transport.request(protocol.Unsubscribe(subscription_id))

    def notifications(self, timeout: float = 0.0,
                      ) -> list[protocol.Notify]:
        """Drain pending NOTIFY frames (waiting up to ``timeout``
        seconds for the first one), in arrival order.

        Over a socket this skims the daemon's pushes off the byte
        stream; in process it drains the session's notification queue —
        identical frame contents either way (the parity the live-query
        tests assert)."""
        self._require_open()
        poll = getattr(self._transport, "poll_notifications", None)
        if poll is not None:
            return poll(timeout)
        deadline = time.monotonic() + max(timeout, 0.0)
        while True:
            if self.manager is not None:
                # Flush throttled/coalesced deltas that have left their
                # re-notify window (in process there is no daemon tick).
                live = self.manager._live  # noqa: SLF001
                if live is not None:
                    live.pump()
            out = self.session.pop_notifications()
            if out or time.monotonic() >= deadline:
                return out
            time.sleep(0.002)

    # -- connection management -----------------------------------------------

    def ping(self) -> str:
        """Keepalive: refresh the session lease; returns the label."""
        self._require_open()
        return self._transport.request(protocol.Ping()).session

    def close(self, abort: bool = False) -> None:
        """GOODBYE: end the session (``abort=True`` rolls it back),
        close the transport, and tear down anything this connection
        owns (a Prima created by ``connect()`` with no target)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._transport.request(protocol.Goodbye(abort=abort))
        except (SessionError, OSError):
            pass   # server already gone / session already closed
        self._transport.close()
        if self._owned_db is not None:
            self._owned_db.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise SessionError(f"connection {self.name!r} is closed")

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        self.close(abort=exc_type is not None)

    def __repr__(self) -> str:
        transport = type(self._transport).__name__
        state = "closed" if self._closed else "open"
        return f"Connection({self.name!r}, {state}, {transport})"


class LiveSubscription:
    """The client half of one live query: its handle, the dependency
    set the server extracted, and a convenience :meth:`close`."""

    __slots__ = ("_connection", "subscription_id", "types",
                 "catalog_version", "_closed")

    def __init__(self, connection: Connection,
                 reply: protocol.SubscribeReply) -> None:
        self._connection = connection
        self.subscription_id = reply.subscription_id
        #: The dependency set (sorted atom-type names) — commits to any
        #: of these fire this subscription.
        self.types = tuple(reply.types)
        self.catalog_version = reply.catalog_version
        self._closed = False

    def close(self) -> None:
        """UNSUBSCRIBE (idempotent — double close is fine)."""
        if self._closed:
            return
        self._closed = True
        if not self._connection.closed:
            self._connection.unsubscribe(self.subscription_id)

    def __enter__(self) -> "LiveSubscription":
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"LiveSubscription(#{self.subscription_id}, "
                f"types={list(self.types)})")


def _parse_address(target: str) -> tuple[str, int]:
    """``"prima://host:port"`` (or bare ``"host:port"``) → (host, port)."""
    address = target
    if address.startswith("prima://"):
        address = address[len("prima://"):]
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"cannot parse server address {target!r} "
            f"(expected 'prima://host:port')"
        )
    return host or "127.0.0.1", int(port)


def _socket_connection(host: str, port: int, name: str | None,
                       timeout: float | None) -> Connection:
    sock = _socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)   # exchanges block; timeout governed connect only
    transport = SocketTransport(sock)
    try:
        welcome = transport.request(protocol.Hello(client=name))
    except BaseException:
        transport.close()
        raise
    if not isinstance(welcome, protocol.Welcome):
        transport.close()
        raise ProtocolError(
            f"expected Welcome, got {type(welcome).__name__}"
        )
    return Connection(transport, welcome.session,
                      welcome.default_fetch_size,
                      shards=getattr(welcome, "shards", 1))


def _session_connection(session: Session, *,
                        manager: SessionManager,
                        owned_db: Any | None = None) -> Connection:
    return Connection(LocalTransport(session), session.name,
                      manager.default_fetch_size, session=session,
                      manager=manager, owned_db=owned_db,
                      shards=getattr(manager.db, "shard_count", 1))


def connect(target: Any = None, *, name: str | None = None,
            timeout: float | None = None, **options: Any) -> Connection:
    """Connect to a PRIMA server — the one entry point of the client API.

    ``target`` selects the transport:

    * ``None`` — create a **fresh in-memory Prima** and serve it; the
      connection owns the instance and closes it on ``close()``.  With
      ``shards=N`` (N > 1) a fresh
      :class:`~repro.shard.ShardedCluster` is created instead — the
      same client API, the cluster coordinator underneath.
    * a :class:`~repro.db.Prima` **or** a
      :class:`~repro.shard.ShardedCluster` — serve an existing
      instance in process.  With no ``options``, an already-attached
      :class:`SessionManager` is reused (so several ``connect(db)``
      calls share one admission domain); otherwise a new manager is
      created with ``options`` as its knobs (``max_sessions``,
      ``admission``, ``fetch_size``, ``idle_cursor_timeout``,
      ``session_lease``, ... — see :class:`SessionManager`).
    * a :class:`SessionManager` — open one more session on it.
    * a :class:`~repro.serve.daemon.PrimaDaemon` — a socket connection
      to a locally running daemon.
    * ``"prima://host:port"`` (or ``(host, port)``) — a socket
      connection to a remote daemon; ``timeout`` bounds connection
      establishment, and admission queueing blocks in the HELLO
      exchange.  The daemon may serve a cluster — the protocol is
      identical (``Welcome.shards`` reports the count).

    ``name`` labels the session (``io_report`` keys, lock diagnostics).

    This façade supersedes direct ``SessionManager(...)`` construction
    and ``Prima.serve(...)`` as the client entry point — both remain as
    thin shims for the server-side plumbing they still provide.
    """
    from repro.db import Prima

    if target is None:
        shards = options.pop("shards", 1)
        if shards and shards > 1:
            from repro.shard import ShardedCluster
            db: Any = ShardedCluster(shards=shards)
        else:
            db = Prima()
        manager = SessionManager(db, **options)
        return _session_connection(manager.open(name=name, timeout=timeout),
                                   manager=manager, owned_db=db)
    if isinstance(target, Prima) or getattr(target, "is_cluster", False):
        managers = getattr(target, "_session_managers", [])
        if not options and managers:
            manager = managers[-1]
        else:
            manager = SessionManager(target, **options)
        return _session_connection(manager.open(name=name, timeout=timeout),
                                   manager=manager)
    if isinstance(target, SessionManager):
        if options:
            raise ValueError(
                "manager knobs cannot be changed on an existing "
                f"SessionManager: {sorted(options)}"
            )
        return _session_connection(target.open(name=name, timeout=timeout),
                                   manager=target)
    if isinstance(target, tuple) and len(target) == 2:
        host, port = target
        return _socket_connection(host, int(port), name, timeout)
    if isinstance(target, str):
        host, port = _parse_address(target)
        return _socket_connection(host, port, name, timeout)
    address = getattr(target, "address", None)   # PrimaDaemon duck type
    if address is not None and not options:
        host, port = address
        return _socket_connection(host, port, name, timeout)
    raise TypeError(
        f"cannot connect to {type(target).__name__!r} — expected None, "
        f"Prima, SessionManager, PrimaDaemon, 'prima://host:port', or "
        f"(host, port)"
    )
