"""Multi-session serving: many clients multiplexed onto one PRIMA.

The workstation–server coupling of the paper checks molecules out to
engineering workstations; this module grows that single-caller façade
into a **serving subsystem**: a :class:`SessionManager` multiplexes many
concurrent client sessions onto one :class:`~repro.db.Prima` instance.

Each :class:`Session` owns

* a **top-level transaction** (:mod:`repro.txn`) as its *write* lock
  scope — DML takes X on the target atom type in a *subtransaction*,
  the lock inherited upward and retained until the session closes, so
  two sessions writing the same type conflict loudly; checkins run in
  short-lived top-level transactions that commit — and release their
  atom-level X locks — immediately, preserving the optimistic
  last-writer-wins checkout protocol.  Reads take **no locks at all**:
  opening a cursor pins a *snapshot* of the atom-version epoch
  (:mod:`repro.access.snapshots`) and the pipeline reads that
  consistent state for its whole life, no matter what writers commit
  concurrently;
* a set of **server cursors** (:mod:`repro.serve.cursor`) streaming lazy
  ResultSet pipelines to the client in fetch-size batches;
* a set of **server-side prepared statements**: PREPARE ships the MQL
  text once and returns a handle; EXECUTE_PREPARED re-executes it with
  fresh placeholder bindings — the request carries only the handle id +
  values, and the server binds its cached, catalog-versioned plan;
* **per-session counters**, merged into :meth:`SessionManager.io_report`
  (and mirrored as ``serve_*`` aggregates into the shared access-system
  counters).

**The protocol core.**  Every client exchange is one typed request in,
one typed response out (:mod:`repro.serve.protocol`), dispatched through
:meth:`Session.handle` — the single transport-agnostic entry point.  The
in-process transport (:class:`~repro.serve.connection.LocalTransport`,
and this class's own convenience methods) calls ``handle`` directly; the
asyncio daemon (:mod:`repro.serve.daemon`) decodes the same dataclasses
off a socket and calls the same method.  Message/byte accounting happens
once, in ``handle``, via :func:`repro.serve.protocol.wire_size` — so
every transport is billed identically against the network cost model.

**Resource hygiene at scale.**  Three knobs reclaim what abandoned
clients leave behind (all off by default; the daemon runs a periodic
reaper, in-process callers invoke :meth:`SessionManager.reap`):

* ``idle_cursor_timeout`` — a cursor nobody FETCHes from is closed,
  its pipeline (and pinned snapshot) released; later use raises
  :class:`~repro.errors.SessionExpiredError`;
* ``idle_statement_timeout`` — a statement handle nobody executes is
  deallocated;
* ``session_lease`` — a session with no message traffic at all is
  aborted and its admission slot returned; PING refreshes the lease
  without doing work (keepalive).

**Admission control.**  ``max_sessions`` bounds concurrency; the
``admission`` knob decides what happens at the limit: ``"reject"``
raises :class:`~repro.errors.SessionLimitError` immediately, ``"queue"``
blocks the opener until a slot frees (optionally bounded by
``queue_timeout`` seconds).  The daemon admits via the non-blocking
:meth:`SessionManager.open_nowait` and retries cooperatively, so a full
server never stalls its event loop.

**Threading model.**  Messages of one session are serialised by a
per-session lock; the engine-touching part of every message runs under
the manager's :class:`~repro.util.rwlock.ReadWriteLock`.  Read-only
messages (OPEN / FETCH / REOPEN / CLOSE / PREPARE / EXPLAIN) take the
**shared reader side** — any number of sessions fetch batches truly
concurrently, each against its pinned snapshot epoch — while writes
(DML subtransactions, checkin application) take the **exclusive writer
side**, which also covers the copy-on-write preservation of pre-images
for the pinned snapshots.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from repro.data.prepared import PreparedStatement
from repro.data.result import ResultSet
from repro.errors import (
    CouplingError,
    SessionExpiredError,
    SessionLimitError,
    SessionStateError,
)
from repro.mad.molecule import Molecule
from repro.mad.types import Surrogate
from repro.mql.ast import (
    DeleteStatement,
    InsertStatement,
    ModifyStatement,
)
from repro.obs import MetricsRegistry
from repro.serve import protocol
from repro.serve.cursor import RemoteCursor, ServerCursor
from repro.serve.protocol import batch_bytes, wire_size
from repro.serve.tuning import AUTO_PROBE_SIZE, tune_fetch_size
from repro.txn import Transaction, TransactionManager
from repro.util.rwlock import ReadWriteLock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.coupling.network import NetworkModel
    from repro.db import Prima

#: Sentinel: "use the manager's default fetch size" — callers that
#: want to defer the batching decision to the server's knob pass
#: this instead of an explicit size/None.  On the wire it travels as
#: the string ``"default"`` (sentinel identity does not survive
#: serialisation).
DEFAULT_FETCH_SIZE = object()


def _wire_fetch_size(fetch_size: Any) -> int | str | None:
    """Map the client-side sentinel to its wire representation."""
    if fetch_size is DEFAULT_FETCH_SIZE:
        return protocol.DEFAULT_FETCH_SIZE_WIRE
    return fetch_size


#: Requests whose handling time is a *query* latency (they bind and run
#: a statement), observed into ``query_latency_ms`` next to the generic
#: per-message ``request_latency_ms``.
_QUERY_REQUESTS = (protocol.Open, protocol.Execute,
                   protocol.ExecutePrepared)


def _lock_resource(atom_type: str) -> tuple[str, str]:
    """The lock-table resource of one atom type (kept distinct from
    surrogate resources)."""
    return ("atom_type", atom_type)


class _StatementHolder:
    """One server-side prepared-statement handle with idle tracking."""

    __slots__ = ("prepared", "last_used")

    def __init__(self, prepared: PreparedStatement, now: float) -> None:
        self.prepared = prepared
        self.last_used = now


class _LocalTransport:
    """The in-process transport: protocol messages straight into
    :meth:`Session.handle`.  Exceptions propagate natively (no
    :class:`~repro.serve.protocol.WireError` wrapping — there is no
    wire)."""

    __slots__ = ("session",)

    def __init__(self, session: "Session") -> None:
        self.session = session

    def request(self, message: protocol.Request) -> protocol.Response:
        return self.session.handle(message)

    def close(self) -> None:
        """The transport owns no resources; the session outlives it."""


class Session:
    """One client session: transaction scope, cursors, counters.

    The server-facing core is :meth:`handle`; the remaining public
    methods (``open_cursor``/``query``/``prepare``/``execute``/
    ``explain``/``checkin``) are the in-process convenience client,
    speaking the same protocol through a local transport.
    """

    def __init__(self, manager: "SessionManager", name: str) -> None:
        self.manager = manager
        self.name = name
        self.txn: Transaction = manager.txns.begin()
        #: A full metrics registry (still a ``Counters`` — the serving
        #: reports keep reading it as one): counters plus the session's
        #: request-latency and fetch-batch-size histograms, merged into
        #: the cluster view by ``metrics_report()``.
        self.counters = MetricsRegistry()
        self.closed = False
        self.expired = False
        #: Manager-clock time of the last message (the lease input).
        self.last_activity = manager._now()
        self._cursors: dict[int, ServerCursor] = {}
        self._next_cursor = 0
        #: Cursor ids reclaimed by the idle reaper (tombstones for
        #: error messages that explain *why* the cursor is gone).
        self._reaped_cursors: set[int] = set()
        #: Server-side prepared-statement handles of this session.
        self._statements: dict[int, _StatementHolder] = {}
        self._next_statement = 0
        self._reaped_statements: set[int] = set()
        #: Serialises this session's messages (the per-session half of
        #: the serving thread model).
        self._lock = threading.RLock()
        self._transport = _LocalTransport(self)
        #: Undelivered server pushes (live-query NOTIFY frames) for the
        #: in-process transport; bounded so an unpolled session cannot
        #: grow without limit — overflow drops the oldest frame.  The
        #: daemon replaces the sink with a handoff into its bounded
        #: asyncio send queue.
        self._notifications: deque[protocol.Notify] = deque(maxlen=256)
        self._notify_sink: Callable[[protocol.Notify], bool] | None = None

    # -- internals -----------------------------------------------------------

    def _require_open(self) -> None:
        if self.closed:
            if self.expired:
                raise SessionExpiredError(
                    f"session {self.name!r} lease expired after "
                    f"{self.manager.session_lease}s without traffic — "
                    f"its admission slot was reclaimed"
                )
            raise SessionStateError(f"session {self.name!r} is closed")

    def _bill(self, message: protocol.Request | protocol.Response) -> None:
        """Account one protocol message against the network cost model.

        Sizing lives in the codec (:func:`~repro.serve.protocol.wire_size`),
        so the in-process transport and the daemon socket bill the exact
        same bytes for the same exchange."""
        self.manager.stats.account(self.manager.model, wire_size(message))

    def _count(self, name: str, amount: float = 1) -> None:
        """Bump a per-session counter and its ``serve_*`` aggregate."""
        self.counters.bump(name, amount)
        self.manager.db.access.counters.bump(f"serve_{name}", amount)

    @property
    def _db(self) -> "Prima":
        return self.manager.db

    def _cursor_of(self, cursor_id: int) -> ServerCursor:
        try:
            return self._cursors[cursor_id]
        except KeyError:
            if cursor_id in self._reaped_cursors:
                raise SessionExpiredError(
                    f"cursor #{cursor_id} of session {self.name!r} was "
                    f"reclaimed after {self.manager.idle_cursor_timeout}s "
                    f"idle — its pipeline resources were returned"
                ) from None
            raise SessionStateError(
                f"session {self.name!r} has no cursor #{cursor_id}"
            ) from None

    def _statement_of(self, statement_id: int) -> _StatementHolder:
        try:
            return self._statements[statement_id]
        except KeyError:
            if statement_id in self._reaped_statements:
                raise SessionExpiredError(
                    f"prepared statement #{statement_id} of session "
                    f"{self.name!r} was deallocated after "
                    f"{self.manager.idle_statement_timeout}s idle"
                ) from None
            raise SessionStateError(
                f"session {self.name!r} has no prepared statement "
                f"#{statement_id}"
            ) from None

    # -- the protocol core ---------------------------------------------------

    def handle(self, request: protocol.Request) -> protocol.Response:
        """Serve one protocol request — the transport-agnostic entry.

        Bills the request and the response against the network model
        (via the codec's :func:`~repro.serve.protocol.wire_size`),
        refreshes the session lease, and dispatches on the message
        type.  Raises the usual :class:`~repro.errors.PrimaError`
        subclasses; socket transports convert them to
        :class:`~repro.serve.protocol.WireError` frames.
        """
        handler = self._DISPATCH.get(type(request))
        if handler is None:
            raise SessionStateError(
                f"session {self.name!r} cannot serve "
                f"{type(request).__name__} messages"
            )
        with self._lock:
            if self.closed and isinstance(
                    request, (protocol.CloseCursor, protocol.Deallocate,
                              protocol.Goodbye)):
                # Session teardown already released everything —
                # idempotent, unbilled (matches a direct close()).
                return protocol.Ack()
            self._require_open()
            self.last_activity = self.manager._now()
            self._bill(request)
            obs = self._db.data.obs
            span = obs.tracer.start(f"msg:{type(request).__name__}",
                                    session=self.name)
            started = time.perf_counter()
            response = handler(self, request)
            duration = time.perf_counter() - started
            self.counters.observe("request_latency_ms",
                                  duration * 1000.0)
            if isinstance(request, _QUERY_REQUESTS):
                self.counters.observe("query_latency_ms",
                                      duration * 1000.0)
            if span is not None:
                span.finish()
                span.duration = duration
                text = getattr(request, "mql", "") or \
                    f"msg:{type(request).__name__}"
                obs.slowlog.record(text, duration, span)
            self._bill(response)
            return response

    # -- cursor messages -----------------------------------------------------

    def _resolve_fetch_size(self, fetch_size: Any) -> int | str | None:
        if fetch_size is DEFAULT_FETCH_SIZE or \
                fetch_size == protocol.DEFAULT_FETCH_SIZE_WIRE:
            fetch_size = self.manager.default_fetch_size
        if fetch_size is None or fetch_size == protocol.AUTO_FETCH_SIZE:
            return fetch_size
        if not isinstance(fetch_size, int) or fetch_size < 1:
            raise SessionStateError(
                "fetch_size must be >= 1, None, or 'auto'")
        return fetch_size

    def _open_pipeline(self, prepared: PreparedStatement, args: tuple,
                       params: dict[str, Any] | None,
                       fetch_size: int | str | None) -> protocol.OpenReply:
        """Bind a prepared SELECT, open its server cursor, fetch the
        first batch.  The caller holds the engine's reader side.

        No lock is taken on the root atom type: the pipeline is compiled
        against a pinned snapshot of the atom-version epoch, so it keeps
        reading the state as of this open — concurrent commits neither
        block it nor leak into it.  The pin is released when the
        pipeline closes (client CLOSE, exhaustion teardown, idle reap,
        or session close).

        ``fetch_size="auto"`` serves a probe batch and answers with the
        size tuned from the network model against the *measured* mean
        molecule wire size of this very result (see
        :mod:`repro.serve.tuning`); the reply's ``fetch_size`` is always
        the resolved value the client should FETCH with.
        """
        if prepared.kind != "select":
            raise SessionStateError(
                "remote cursors serve SELECT statements only "
                "(use Session.execute for DML)"
            )
        result = self._db.data.open_result(prepared, args, params or {})
        self._count("snapshot_reads")
        self._next_cursor += 1
        cursor = ServerCursor(self, self._next_cursor, result,
                              prepared.root_atom_type)
        self._cursors[cursor.cursor_id] = cursor
        if fetch_size is None:
            batch = cursor.fetch_all()
            exhausted, resolved = True, None
        elif fetch_size == protocol.AUTO_FETCH_SIZE:
            batch, exhausted = cursor.fetch(AUTO_PROBE_SIZE)
            if batch:
                row_bytes = max(
                    1, (batch_bytes(batch) - protocol.BATCH_HEADER_BYTES)
                    // len(batch))
            else:
                row_bytes = 0
            resolved = tune_fetch_size(self.manager.model, row_bytes)
            self._count("fetch_sizes_tuned")
        else:
            batch, exhausted = cursor.fetch(fetch_size)
            resolved = fetch_size
        self._count("cursors_opened")
        self._count("fetch_messages")
        self._count("rows_streamed", len(batch))
        self.counters.observe("fetch_batch_rows", len(batch))
        return protocol.OpenReply(cursor.cursor_id, batch, exhausted,
                                  result.plan_text, resolved,
                                  shard=getattr(result, "shard", None))

    def _handle_open(self, request: protocol.Open) -> protocol.OpenReply:
        """OPEN: compile the pipeline, deliver the first batch.

        The statement text rides in the request; preparation runs
        through the shared plan cache, so repeated text skips parse+plan
        even over this one-shot message."""
        fetch_size = self._resolve_fetch_size(request.fetch_size)
        with self.manager.engine.reader():
            prepared = self._db.data.prepare(request.mql)
            return self._open_pipeline(prepared, request.args,
                                       request.params, fetch_size)

    def _handle_fetch(self, request: protocol.Fetch) -> protocol.Batch:
        """FETCH(n): the next batch of an open cursor."""
        cursor = self._cursor_of(request.cursor_id)
        with self.manager.engine.reader():
            batch, exhausted = cursor.fetch(request.count)
        self._count("fetch_messages")
        self._count("rows_streamed", len(batch))
        self.counters.observe("fetch_batch_rows", len(batch))
        return protocol.Batch(batch, exhausted)

    def _handle_reopen(self, request: protocol.Reopen) -> protocol.Batch:
        """REOPEN: restart the stream (truncation raises, as locally)."""
        cursor = self._cursor_of(request.cursor_id)
        with self.manager.engine.reader():
            cursor.reopen()
            if request.fetch_size is None:
                batch = cursor.fetch_all()
                exhausted = True
            else:
                batch, exhausted = cursor.fetch(request.fetch_size)
        self._count("fetch_messages")
        self._count("rows_streamed", len(batch))
        self.counters.observe("fetch_batch_rows", len(batch))
        return protocol.Batch(batch, exhausted)

    def _handle_close_cursor(self,
                             request: protocol.CloseCursor) -> protocol.Ack:
        """CLOSE: release the server pipeline for good."""
        cursor = self._cursors.pop(request.cursor_id, None)
        if cursor is not None:
            with self.manager.engine.reader():
                cursor.close()
        self._count("cursors_closed")
        return protocol.Ack()

    # -- prepared-statement messages -----------------------------------------

    def _handle_prepare(self,
                        request: protocol.Prepare) -> protocol.PrepareReply:
        """PREPARE: ship the text once; the response is a statement
        handle.  Every later EXECUTE_PREPARED carries only the handle
        and the bindings — the text is never reshipped, and the server
        never re-plans it (until a catalog-version bump forces a
        transparent re-plan)."""
        with self.manager.engine.reader():
            prepared = self._db.data.prepare(request.mql)
        self._next_statement += 1
        statement_id = self._next_statement
        self._statements[statement_id] = _StatementHolder(
            prepared, self.manager._now())
        self._count("statements_prepared")
        return protocol.PrepareReply(
            statement_id, prepared.kind, prepared.text,
            prepared.param_count, tuple(prepared.param_names))

    def _handle_execute_prepared(
            self, request: protocol.ExecutePrepared
    ) -> protocol.OpenReply | protocol.Executed:
        """EXECUTE_PREPARED: open a cursor (SELECT) or run the DML over
        a server-side statement handle — handle + bindings only."""
        holder = self._statement_of(request.statement_id)
        holder.last_used = self.manager._now()
        self._count("prepared_executions")
        if holder.prepared.kind == "select":
            fetch_size = self._resolve_fetch_size(request.fetch_size)
            with self.manager.engine.reader():
                return self._open_pipeline(holder.prepared, request.args,
                                           request.params, fetch_size)
        result = self._execute_locked(holder.prepared, request.args,
                                      request.params)
        self._count("statements")
        return protocol.Executed(result.molecules, result.affected,
                                 result.inserted)

    def _handle_deallocate(self,
                           request: protocol.Deallocate) -> protocol.Ack:
        """DEALLOCATE: drop a server-side statement handle."""
        self._statements.pop(request.statement_id, None)
        return protocol.Ack()

    # -- one-shot statements -------------------------------------------------

    def _handle_execute(
            self, request: protocol.Execute
    ) -> protocol.OpenReply | protocol.Executed:
        """EXECUTE: the server routes — SELECT opens a default-sized
        cursor (the reply is an :class:`~repro.serve.protocol.OpenReply`),
        DML runs in a subtransaction and answers with its outcome."""
        with self.manager.engine.reader():
            prepared = self._db.data.prepare(request.mql)
            if prepared.kind == "select":
                fetch_size = self._resolve_fetch_size(DEFAULT_FETCH_SIZE)
                return self._open_pipeline(prepared, request.args,
                                           request.params, fetch_size)
        result = self._execute_locked(prepared, request.args, request.params)
        self._count("statements")
        return protocol.Executed(result.molecules, result.affected,
                                 result.inserted)

    def _handle_explain(self,
                        request: protocol.Explain) -> protocol.ExplainReply:
        """EXPLAIN: the server renders the processing plan as a
        first-class message pair — request carries the text (+ optional
        bindings), response carries the plan text.  No pipeline opens,
        no cursor, no locks beyond the shared reader side."""
        with self.manager.engine.reader():
            prepared = self._db.data.prepare(request.mql)
            if prepared.kind != "select":
                raise SessionStateError(
                    "EXPLAIN supports SELECT statements only"
                )
            text = prepared.explain(args=request.args,
                                    params=request.params or {})
        self._count("explains")
        return protocol.ExplainReply(text)

    # -- observability -------------------------------------------------------

    def _handle_stats(self,
                      request: protocol.Stats) -> protocol.StatsReply:
        """STATS: export the server's merged metrics registry and its
        slow-query log — the same ``metrics_report()`` schema the
        in-process API returns, so clients see identical histograms on
        every transport.  ``reset=True`` zeroes the observability
        accounting (the metrics bundle and the slow log; the plain
        counter report is left alone) after the read."""
        obs = self._db.data.obs
        reply = protocol.StatsReply(metrics=self._db.metrics_report(),
                                    slowlog=obs.slowlog.snapshot())
        if request.reset:
            obs.reset()
            self.manager.metrics.reset()
        self._count("stats_pulls")
        return reply

    def _handle_trace(self,
                      request: protocol.Trace) -> protocol.TraceReply:
        """TRACE: run a SELECT to exhaustion under a forced trace and
        ship its span tree back — rendered text plus the JSON form.  No
        cursor opens; the engine's shared reader side covers the run
        exactly like an OPEN."""
        with self.manager.engine.reader():
            prepared = self._db.data.prepare(request.mql)
            if prepared.kind != "select":
                raise SessionStateError(
                    "TRACE supports SELECT statements only"
                )
            span = prepared.trace(request.args, request.params or {})
        self._count("traces")
        return protocol.TraceReply("\n".join(span.render()),
                                   span.to_dict())

    # -- checkin -------------------------------------------------------------

    def _handle_checkin(self,
                        request: protocol.Checkin) -> protocol.CheckinReply:
        """Apply a workstation's object buffer in one message pair (see
        :meth:`checkin` for the protocol semantics)."""
        with self.manager.engine.writer():
            mapping = self._apply_checkin(request.modifications,
                                          request.deletions,
                                          request.creations)
        self._count("checkins")
        return protocol.CheckinReply(mapping)

    # -- live queries --------------------------------------------------------

    def _handle_subscribe(self, request: protocol.Subscribe,
                          ) -> protocol.SubscribeReply:
        """SUBSCRIBE: register a prepared SELECT for server push.

        The statement is prepared (riding the plan cache), its
        dependency set extracted from the plan, and the subscription
        admitted against the session's budget
        (``manager.max_subscriptions``).  From here on, any commit
        touching a type in the set pushes an unsolicited NOTIFY frame.
        """
        with self.manager.engine.reader():
            prepared = self._db.data.prepare(request.mql)
            if prepared.kind != "select":
                raise SessionStateError(
                    "SUBSCRIBE supports SELECT statements only"
                )
            sub = self.manager.live.subscribe(
                self, prepared, request.args, request.params or {},
                request.deliver)
        self._count("subscriptions_opened")
        return protocol.SubscribeReply(sub.subscription_id,
                                       tuple(sorted(sub.types)),
                                       sub.catalog_version)

    def _handle_unsubscribe(self, request: protocol.Unsubscribe,
                            ) -> protocol.Ack:
        """UNSUBSCRIBE: drop one subscription (idempotent)."""
        if self.manager.live.unsubscribe(request.subscription_id,
                                         session=self):
            self._count("subscriptions_closed")
        return protocol.Ack()

    def set_notify_sink(self,
                        sink: Callable[[protocol.Notify], bool] | None,
                        ) -> None:
        """Route pushes somewhere other than the in-process deque (the
        daemon installs a thread-safe handoff into its send queue)."""
        self._notify_sink = sink

    def deliver_notification(self, message: protocol.Notify) -> bool:
        """Hand one NOTIFY frame to this session's client.

        Called by the notifier (committing thread or flush thread) —
        deliberately lock-free against the session's message lock: a
        deque append / queue handoff plus billing, nothing that could
        wait behind a long-running request.  Returns False once the
        session is closed (the frame is dropped)."""
        if self.closed:
            return False
        self._bill(message)
        sink = self._notify_sink
        if sink is not None:
            delivered = sink(message)
        else:
            if len(self._notifications) == self._notifications.maxlen:
                self._count("notifications_dropped")
            self._notifications.append(message)
            delivered = True
        if delivered:
            self._count("notifications_delivered")
        else:
            self._count("notifications_dropped")
        return delivered

    def pop_notifications(self) -> list[protocol.Notify]:
        """Drain the in-process notification queue (sync client poll)."""
        out: list[protocol.Notify] = []
        while True:
            try:
                out.append(self._notifications.popleft())
            except IndexError:
                return out

    # -- connection management -----------------------------------------------

    def _handle_ping(self, _request: protocol.Ping) -> protocol.Pong:
        """PING: refresh the session lease (keepalive) — no work."""
        self._count("keepalives")
        return protocol.Pong(self.name)

    def _handle_goodbye(self, request: protocol.Goodbye) -> protocol.Ack:
        """GOODBYE: end the session (abort=True rolls it back)."""
        if request.abort:
            self.abort()
        else:
            self.close()
        return protocol.Ack()

    _DISPATCH: dict[type, Callable[["Session", Any], protocol.Response]] = {
        protocol.Open: _handle_open,
        protocol.Fetch: _handle_fetch,
        protocol.Reopen: _handle_reopen,
        protocol.CloseCursor: _handle_close_cursor,
        protocol.Prepare: _handle_prepare,
        protocol.ExecutePrepared: _handle_execute_prepared,
        protocol.Deallocate: _handle_deallocate,
        protocol.Execute: _handle_execute,
        protocol.Explain: _handle_explain,
        protocol.Stats: _handle_stats,
        protocol.Trace: _handle_trace,
        protocol.Checkin: _handle_checkin,
        protocol.Subscribe: _handle_subscribe,
        protocol.Unsubscribe: _handle_unsubscribe,
        protocol.Ping: _handle_ping,
        protocol.Goodbye: _handle_goodbye,
    }

    # -- client entry points (the in-process convenience client) -------------

    def open_cursor(self, mql: str, fetch_size: Any = DEFAULT_FETCH_SIZE,
                    on_arrival: Callable[[Molecule], None] | None = None,
                    args: tuple = (),
                    params: dict[str, Any] | None = None) -> RemoteCursor:
        """OPEN a remote streaming cursor over ``mql``.

        ``fetch_size=None`` ships the whole set in the open response (the
        set-oriented one-message-pair mode); an integer streams batches
        of that size with one-batch prefetch; ``"auto"`` lets the server
        tune the batch size from the network model.  ``on_arrival`` runs
        per molecule as its batch reaches the client.  ``args``/
        ``params`` bind ``?`` / ``:name`` placeholders for this one
        execution; a statement executed repeatedly is better served by
        :meth:`prepare` (the text ships once).
        """
        reply = self.handle(protocol.Open(mql, _wire_fetch_size(fetch_size),
                                          args, params))
        return RemoteCursor(self._transport, reply, on_arrival=on_arrival)

    def query(self, mql: str, fetch_size: Any = DEFAULT_FETCH_SIZE,
              on_arrival: Callable[[Molecule], None] | None = None,
              args: tuple = (),
              params: dict[str, Any] | None = None) -> ResultSet:
        """A lazy :class:`ResultSet` streaming over a remote cursor."""
        cursor = self.open_cursor(mql, fetch_size=fetch_size,
                                  on_arrival=on_arrival,
                                  args=args, params=params)
        return ResultSet(source=cursor, plan_text=cursor.plan_text)

    def subscribe(self, mql: str, args: tuple = (),
                  params: dict[str, Any] | None = None,
                  deliver: str = "notify") -> protocol.SubscribeReply:
        """SUBSCRIBE a SELECT for server push; poll
        :meth:`pop_notifications` (or ``Connection.notifications()``)
        for the NOTIFY frames."""
        return self.handle(protocol.Subscribe(mql, args, params, deliver))

    def unsubscribe(self, subscription_id: int) -> None:
        """UNSUBSCRIBE one live query (idempotent)."""
        self.handle(protocol.Unsubscribe(subscription_id))

    def prepare(self, mql: str) -> "RemotePreparedStatement":
        """PREPARE ``mql`` server-side; the client keeps a handle.

        The statement text crosses the wire exactly once.  Every
        ``handle.execute(...)`` afterwards is an EXECUTE_PREPARED
        message shipping only the handle id and the placeholder
        bindings — the server binds its cached, catalog-versioned plan
        and streams the cursor as usual (no re-parse, no re-plan, no
        text).
        """
        reply = self.handle(protocol.Prepare(mql))
        return RemotePreparedStatement(self._transport, reply)

    def _execute_locked(self, prepared: PreparedStatement, args: tuple,
                        params: dict[str, Any] | None) -> ResultSet:
        """Run a non-SELECT prepared statement in a *subtransaction*.

        The subtransaction is the lock scope: an X lock on the target
        atom type is taken for the statement — a peer session's open
        cursor on that type (S) conflicts loudly, while this session's
        own read locks never do (Moss's ancestor rule: the session
        transaction is the writer's parent).  On success the lock is
        inherited upward, so the session *retains* X on every type it
        wrote until it closes; a failing statement aborts the
        subtransaction and releases it.  Write effects themselves become
        visible immediately, like a checkin — to *new* snapshots; open
        cursors keep their pinned epoch.  The exclusive writer side of
        the engine lock covers the statement, its copy-on-write
        pre-image preservation, and the epoch publish.
        """
        with self.manager.engine.writer():
            writer = self.txn.begin_nested()
            try:
                target = self._statement_target(prepared.statement)
                if target is not None:
                    self.manager.txns.locks.acquire(
                        writer, _lock_resource(target), "X")
                result = prepared.execute(*args, **(params or {}))
                result.materialize()
            except BaseException:
                writer.abort()   # drops the writer's locks
                raise
            writer.commit()      # the session inherits the X lock
        return result

    def execute(self, mql: str, *args: Any, **params: Any) -> ResultSet:
        """Execute one statement; DML runs in a *subtransaction* (see
        :meth:`_execute_locked` for the lock discipline).  SELECTs route
        to a default-sized remote cursor.  ``*args``/``**params`` bind
        placeholders.
        """
        reply = self.handle(protocol.Execute(mql, args, params or None))
        if isinstance(reply, protocol.OpenReply):
            cursor = RemoteCursor(self._transport, reply)
            return ResultSet(source=cursor, plan_text=cursor.plan_text)
        return ResultSet(molecules=reply.molecules, affected=reply.affected,
                         inserted=reply.inserted)

    def explain(self, mql: str, *args: Any, **params: Any) -> str:
        """The server-side processing plan of ``mql``, over the wire.

        ``args``/``params`` optionally bind placeholders so the rendered
        plan shows concrete ranges instead of ``?n`` markers."""
        return self.handle(
            protocol.Explain(mql, args, params or None)).text

    def server_stats(self, reset: bool = False) -> dict[str, Any]:
        """The server's observability export over the wire: the merged
        ``metrics_report()`` (counters + gauges + histograms) and the
        slow-query log, as one STATS message pair."""
        reply = self.handle(protocol.Stats(reset))
        return {"metrics": reply.metrics, "slowlog": reply.slowlog}

    def trace(self, mql: str, *args: Any, **params: Any) -> dict[str, Any]:
        """Run ``mql`` server-side under a forced trace; returns the
        span tree as ``{"text": rendered, "tree": Span.to_dict()}``."""
        reply = self.handle(protocol.Trace(mql, args, params or None))
        return {"text": reply.text, "tree": reply.tree}

    def ping(self) -> str:
        """Keepalive: refresh this session's lease; returns its label."""
        return self.handle(protocol.Ping()).session

    def _statement_target(self, statement) -> str | None:
        if isinstance(statement, InsertStatement):
            return statement.type_name
        if isinstance(statement, (DeleteStatement, ModifyStatement)):
            structure = self._db.data.validator.resolve_structure(
                statement.from_clause)
            return structure.atom_type
        return None

    def parallel_query(self, mql: str, processors: int = 4,
                       partitions: int | None = None,
                       max_workers: int | None = None,
                       mode: str | None = None):
        """Run one SELECT with semantic parallelism *inside* this session.

        The construction workers take the **shared reader side** of the
        manager's engine lock per DU — they run concurrently with every
        other session's cursors and with each other, excluding only
        writers.  ``mode`` selects the worker fabric: ``'threads'``
        (latency overlap under the GIL) or ``'processes'`` (a
        ``fork``-based pool, real CPU parallelism — each child reads its
        inherited copy-on-write image of the engine, a natural
        snapshot).  ``mode``/``max_workers`` default to the manager's
        ``parallel_mode``/``parallel_workers`` knobs.
        """
        self._require_open()
        from repro.parallel import parallel_select
        return parallel_select(self._db, mql, processors=processors,
                               partitions=partitions,
                               max_workers=(max_workers
                                            if max_workers is not None
                                            else self.manager.parallel_workers),
                               mode=mode if mode is not None
                               else self.manager.parallel_mode,
                               engine_lock=self.manager.engine.reader())

    # -- checkin (the write half of the coupling protocol) -------------------

    def checkin(self, modifications: dict[Surrogate, dict[str, Any]],
                deletions: list[Surrogate] | None = None,
                creations: list[tuple[Surrogate, dict[str, Any]]] | None
                = None) -> dict[Surrogate, Surrogate]:
        """Apply a workstation's object buffer in one message pair.

        ``creations`` carries atoms created locally under *temporary*
        surrogates; they are inserted here and the mapping temporary →
        real surrogate is returned (and billed into the ack message).
        References among new atoms are remapped, in two phases so cyclic
        n:m references among creations work.

        The application runs in a short-lived transaction under the
        engine lock: every touched atom is X-locked (and undo-logged) for
        the duration, the commit releases the locks — concurrent
        checkins serialise at message granularity and the later one wins
        (the optimistic object-buffer protocol).
        """
        reply = self.handle(protocol.Checkin(modifications,
                                             deletions or [],
                                             creations or []))
        return reply.mapping

    def _apply_checkin(self, modifications, deletions,
                       creations) -> dict[Surrogate, Surrogate]:
        db = self._db
        writer = self.manager.txns.begin()
        try:
            mapping: dict[Surrogate, Surrogate] = {}
            deferred_refs: list[tuple[Surrogate, dict[str, Any]]] = []
            for temp, values in creations:
                plain = {k: v for k, v in values.items()
                         if not _mentions_temp(v, creations)}
                refs = {k: v for k, v in values.items() if k not in plain}
                real = writer.insert(temp.atom_type, plain)
                mapping[temp] = real
                if refs:
                    deferred_refs.append((real, refs))
            for real, refs in deferred_refs:
                writer.modify(real, _remap(refs, mapping))
            for surrogate, values in modifications.items():
                if not db.access.atoms.exists(surrogate):
                    raise CouplingError(
                        f"checkin of unknown atom {surrogate}"
                    )
                writer.modify(surrogate, _remap(values, mapping))
            for surrogate in deletions:
                writer.delete(surrogate)
        except BaseException:
            # Selective recovery: roll the half-applied checkin back.
            writer.abort()
            raise
        writer.commit()
        db.commit()
        # The commit boundary of the snapshot clock: cursors opened
        # from here on see the checkin; pinned ones keep their epoch.
        db.data.publish_data_version()
        return mapping

    # -- resource hygiene ----------------------------------------------------

    def reap_idle(self, now: float) -> tuple[int, int]:
        """Close idle cursors and deallocate idle statement handles
        (driven by :meth:`SessionManager.reap`); returns the counts.

        A reaped cursor's pipeline is released exactly as a client CLOSE
        would release it — the pinned snapshot unpins, close-hooks run,
        close-while-pending marks the set truncated.  Later client use
        of the reclaimed id raises
        :class:`~repro.errors.SessionExpiredError`.
        """
        cursors = statements = 0
        with self._lock:
            if self.closed:
                return 0, 0
            timeout = self.manager.idle_cursor_timeout
            if timeout is not None:
                for cursor_id, cursor in list(self._cursors.items()):
                    if now - cursor.last_used >= timeout:
                        with self.manager.engine.reader():
                            cursor.close()
                        del self._cursors[cursor_id]
                        self._reaped_cursors.add(cursor_id)
                        self._count("cursors_reaped")
                        cursors += 1
            timeout = self.manager.idle_statement_timeout
            if timeout is not None:
                for statement_id, holder in list(self._statements.items()):
                    if now - holder.last_used >= timeout:
                        del self._statements[statement_id]
                        self._reaped_statements.add(statement_id)
                        self._count("statements_reaped")
                        statements += 1
        return cursors, statements

    def expire(self) -> None:
        """Lease ran out: abort the session and reclaim its slot.

        Abort — not commit — because an expired session is an abandoned
        one: its uncommitted subtransaction work is rolled back, exactly
        as for a client that disconnects without GOODBYE.  (Checkins
        committed in their own short transactions are unaffected.)
        """
        with self._lock:
            if self.closed:
                return
            self.expired = True
            self._count("sessions_expired")
        self.abort()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release every cursor, commit the session transaction (freeing
        its locks), and return the admission slot."""
        with self._lock:
            if self.closed:
                return
            with self.manager.engine.reader():
                for cursor in self._cursors.values():
                    cursor.close()
                self._cursors.clear()
            self._statements.clear()
            self.closed = True
            self.txn.commit()
        self.manager._drop_subscriptions(self)  # noqa: SLF001
        self.manager._release(self)  # noqa: SLF001

    def abort(self) -> None:
        """Abort the session transaction (undoing logged effects) and
        release everything."""
        with self._lock:
            if self.closed:
                return
            with self.manager.engine.reader():
                for cursor in self._cursors.values():
                    cursor.close()
                self._cursors.clear()
            self._statements.clear()
            self.closed = True
            # Undoing logged effects writes to the engine — exclusive.
            with self.manager.engine.writer():
                self.txn.abort()
        self.manager._drop_subscriptions(self)  # noqa: SLF001
        self.manager._release(self)  # noqa: SLF001

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is not None and not self.closed:
            self.abort()
        else:
            self.close()

    @property
    def open_cursors(self) -> int:
        return len(self._cursors)

    @property
    def open_statements(self) -> int:
        """Server-side prepared-statement handles currently held."""
        return len(self._statements)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (f"Session({self.name!r}, {state}, "
                f"{len(self._cursors)} cursor(s))")


class RemotePreparedStatement:
    """The client half of a server-side prepared statement.

    Created from the :class:`~repro.serve.protocol.PrepareReply` of a
    PREPARE exchange — the statement text shipped once; this handle
    re-executes it with fresh bindings over EXECUTE_PREPARED messages
    that carry only the statement id and the parameter values.  SELECT
    handles stream their result through the ordinary remote-cursor
    machinery (first batch in the response, double-buffered prefetch,
    the full client cursor contract); DML handles execute under the
    session's subtransaction lock discipline.  Like the cursor, the
    handle is transport-agnostic: it speaks protocol dataclasses through
    whatever transport created it.
    """

    def __init__(self, transport, reply: protocol.PrepareReply) -> None:
        self._transport = transport
        self.statement_id = reply.statement_id
        self.text = reply.text
        self.kind = reply.kind
        self.param_count = reply.param_count
        self.param_names = reply.param_names
        self._closed = False

    def _require_open(self) -> None:
        if self._closed:
            raise SessionStateError(
                f"prepared statement #{self.statement_id} is deallocated"
            )

    def open_cursor(self, *args: Any,
                    fetch_size: Any = DEFAULT_FETCH_SIZE,
                    on_arrival: Callable[[Molecule], None] | None = None,
                    **params: Any) -> RemoteCursor:
        """EXECUTE_PREPARED: a streaming cursor over one execution."""
        self._require_open()
        if self.kind != "select":
            raise SessionStateError(
                "remote cursors serve SELECT statements only "
                "(use execute() for DML)"
            )
        reply = self._transport.request(protocol.ExecutePrepared(
            self.statement_id, args, params or None,
            _wire_fetch_size(fetch_size)))
        return RemoteCursor(self._transport, reply, on_arrival=on_arrival)

    def execute(self, *args: Any, fetch_size: Any = DEFAULT_FETCH_SIZE,
                on_arrival: Callable[[Molecule], None] | None = None,
                **params: Any) -> ResultSet:
        """Re-execute with fresh bindings (no text, no re-plan).

        SELECTs return the usual lazy :class:`ResultSet` over a remote
        cursor; DML returns its outcome set.
        """
        self._require_open()
        if self.kind != "select":
            reply = self._transport.request(protocol.ExecutePrepared(
                self.statement_id, args, params or None, None))
            return ResultSet(molecules=reply.molecules,
                             affected=reply.affected,
                             inserted=reply.inserted)
        cursor = self.open_cursor(*args, fetch_size=fetch_size,
                                  on_arrival=on_arrival, **params)
        return ResultSet(source=cursor, plan_text=cursor.plan_text)

    def close(self) -> None:
        """DEALLOCATE the server-side handle (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._transport.request(protocol.Deallocate(self.statement_id))

    def __enter__(self) -> "RemotePreparedStatement":
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "deallocated" if self._closed else "prepared"
        return (f"RemotePreparedStatement(#{self.statement_id}, {state}, "
                f"{self.text!r})")


class SessionManager:
    """Session lifecycle + admission control over one Prima instance."""

    def __init__(self, db: "Prima", model: "NetworkModel | None" = None,
                 max_sessions: int = 8, admission: str = "reject",
                 queue_timeout: float | None = None,
                 default_fetch_size: int | str | None = None,
                 parallel_mode: str = "threads",
                 parallel_workers: int | None = None,
                 idle_cursor_timeout: float | None = None,
                 idle_statement_timeout: float | None = None,
                 session_lease: float | None = None,
                 clock: Callable[[], float] | None = None,
                 max_subscriptions: int = 32,
                 notify_interval: float = 0.0) -> None:
        # Imported here, not at module level: the coupling package's
        # server rides on this module, so a top-level import would cycle.
        from repro.coupling.network import NetworkModel, NetworkStats
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if admission not in ("reject", "queue"):
            raise ValueError(
                f"admission must be 'reject' or 'queue', got {admission!r}"
            )
        if parallel_mode not in ("threads", "processes"):
            raise ValueError(
                f"parallel_mode must be 'threads' or 'processes', got "
                f"{parallel_mode!r}"
            )
        if isinstance(default_fetch_size, str) and \
                default_fetch_size != protocol.AUTO_FETCH_SIZE:
            raise ValueError(
                f"default_fetch_size must be None, an int >= 1, or "
                f"'auto', got {default_fetch_size!r}"
            )
        for knob, value in (("idle_cursor_timeout", idle_cursor_timeout),
                            ("idle_statement_timeout",
                             idle_statement_timeout),
                            ("session_lease", session_lease)):
            if value is not None and value <= 0:
                raise ValueError(f"{knob} must be positive (or None)")
        if max_subscriptions < 1:
            raise ValueError("max_subscriptions must be >= 1")
        if notify_interval < 0:
            raise ValueError("notify_interval must be >= 0")
        self.db = db
        self.model = model if model is not None else NetworkModel()
        self.stats = NetworkStats()
        #: Manager-level metrics (admission waits, daemon loop health);
        #: merged with every session's registry by
        #: :meth:`metric_registries`.
        self.metrics = MetricsRegistry()
        self.max_sessions = max_sessions
        self.admission = admission
        self.queue_timeout = queue_timeout
        #: None: whole set in the open response; int: streaming batches;
        #: ``"auto"``: the server tunes per cursor from the network model.
        self.default_fetch_size = default_fetch_size
        #: Worker fabric of :meth:`Session.parallel_query`: 'threads'
        #: or 'processes' (fork-based pool); per-call ``mode`` overrides.
        self.parallel_mode = parallel_mode
        #: Default worker cap of :meth:`Session.parallel_query`.
        self.parallel_workers = parallel_workers
        #: Resource-hygiene knobs (seconds; None disables) — enforced by
        #: :meth:`reap`, which the daemon calls periodically.
        self.idle_cursor_timeout = idle_cursor_timeout
        self.idle_statement_timeout = idle_statement_timeout
        self.session_lease = session_lease
        #: Live-query admission budgets: subscriptions per session, and
        #: the minimum seconds (manager clock) between NOTIFY frames of
        #: one subscription — fires inside the window coalesce into one
        #: pending delta.
        self.max_subscriptions = max_subscriptions
        self.notify_interval = notify_interval
        #: The live-query hub, built on first touch (the import and the
        #: version-store listeners stay entirely out of subscriptions-
        #: free workloads).
        self._live: "Any | None" = None
        #: Injectable monotonic clock (tests drive expiry determinis-
        #: tically by substituting a fake).
        self._clock = clock if clock is not None else time.monotonic
        self.txns = TransactionManager(db.access)
        #: The narrow writer/epoch-publish mutex that replaced the old
        #: session-wide engine RLock: read-only messages share the
        #: reader side (snapshot-pinned pipelines fetch concurrently),
        #: writes and their epoch publish take the exclusive writer
        #: side.  ``engine.max_concurrent_readers`` records the proof
        #: that reads actually overlap.
        self.engine = ReadWriteLock()
        self._slots = threading.Condition()
        self._active = 0
        self._peak = 0
        self._session_seq = 0
        #: Every session ever opened (for io_report merging) and the
        #: labels reserved so far (uniqueness under concurrency).
        self._sessions: list[Session] = []
        self._names: set[str] = set()
        attach = getattr(db, "attach_network", None)
        if attach is not None:
            attach(self.stats)
        attach_sessions = getattr(db, "attach_sessions", None)
        if attach_sessions is not None:
            attach_sessions(self)

    def _now(self) -> float:
        return self._clock()

    @property
    def live(self) -> "Any":
        """The manager's live-query hub (built on first use)."""
        with self._slots:
            if self._live is None:
                from repro.live import LiveQueryHub
                self._live = LiveQueryHub(self)
            return self._live

    def _drop_subscriptions(self, session: Session) -> None:
        """Session teardown hook: subscriptions die with their session
        (close, abort, lease expiry, abrupt EOF all land here)."""
        if self._live is not None:
            self._live.release_session(session)

    # -- lifecycle -----------------------------------------------------------

    def open(self, name: str | None = None,
             timeout: float | None = None) -> Session:
        """Open one session, subject to admission control.

        With ``admission='reject'`` a full server raises
        :class:`~repro.errors.SessionLimitError` immediately; with
        ``'queue'`` the opener waits until a slot frees (``timeout``
        overrides the manager's ``queue_timeout``).
        """
        wait_limit = timeout if timeout is not None else self.queue_timeout
        with self._slots:
            if self._active >= self.max_sessions:
                if self.admission == "reject":
                    raise SessionLimitError(
                        f"server at max_sessions={self.max_sessions}"
                    )
                self.db.access.counters.bump("serve_sessions_queued")
                wait_started = time.perf_counter()
                while self._active >= self.max_sessions:
                    if not self._slots.wait(timeout=wait_limit):
                        raise SessionLimitError(
                            f"queued session timed out after "
                            f"{wait_limit}s (max_sessions="
                            f"{self.max_sessions})"
                        )
                self.metrics.observe(
                    "admission_wait_ms",
                    (time.perf_counter() - wait_started) * 1000.0)
            return self._admit(name)

    def open_nowait(self, name: str | None = None) -> Session:
        """Open one session without ever blocking.

        Raises :class:`~repro.errors.SessionLimitError` immediately when
        the server is at capacity — regardless of the ``admission``
        policy.  The asyncio daemon admits through this and retries
        cooperatively (its event loop must never sleep in a condition
        wait), implementing ``'queue'`` admission without a blocked
        thread."""
        with self._slots:
            if self._active >= self.max_sessions:
                raise SessionLimitError(
                    f"server at max_sessions={self.max_sessions}"
                )
            return self._admit(name)

    def _admit(self, name: str | None) -> Session:
        """Take one admission slot and build its session.  The caller
        holds ``_slots`` with ``_active < max_sessions``."""
        self._active += 1
        if self._active > self._peak:
            self._peak = self._active
        self._session_seq += 1
        label = name if name is not None else f"s{self._session_seq}"
        if label in self._names:
            # Reserve a unique label atomically with the slot, so
            # two concurrent opens under one name cannot collide
            # (their io_report keys would silently merge).
            label = f"{label}#{self._session_seq}"
        self._names.add(label)
        session = Session(self, label)
        self._sessions.append(session)
        self.db.access.counters.bump("serve_sessions_opened")
        return session

    def _release(self, _session: Session) -> None:
        with self._slots:
            self._active -= 1
            self._slots.notify_all()

    def close_all(self) -> None:
        """Close every still-open session (releasing their pipelines)."""
        for session in list(self._sessions):
            if not session.closed:
                session.close()
        if self._live is not None:
            self._live.close()

    # -- resource hygiene ----------------------------------------------------

    def reap(self, now: float | None = None) -> dict[str, int]:
        """One sweep of the resource-hygiene timers.

        Expires sessions whose lease ran out (aborting them and
        returning their admission slots), then closes idle cursors and
        deallocates idle statement handles of the surviving sessions.
        The daemon calls this periodically from its event loop;
        in-process setups call it manually (or from their own timer).
        Returns the reclamation counts.
        """
        now = self._now() if now is None else now
        # Flush live-query deltas that left their throttle window (the
        # reaper is the daemon's periodic tick, so coalesced NOTIFYs go
        # out even between commits).
        if self._live is not None:
            self._live.pump()
        expired = cursors = statements = 0
        for session in list(self._sessions):
            if session.closed:
                continue
            if self.session_lease is not None and \
                    now - session.last_activity >= self.session_lease:
                session.expire()
                expired += 1
                continue
            reaped_cursors, reaped_statements = session.reap_idle(now)
            cursors += reaped_cursors
            statements += reaped_statements
        return {"sessions_expired": expired, "cursors_reaped": cursors,
                "statements_reaped": statements}

    def reset_accounting(self) -> None:
        """Zero this manager's accounting: network stats, the
        per-session counters of every session ever opened, and the
        concurrency peak — so benchmark phases start from zero.
        (``Prima.reset_accounting`` calls this for attached managers.)"""
        self.stats.reset()
        self.metrics.reset()
        with self._slots:
            sessions = list(self._sessions)
            self._peak = self._active
        for session in sessions:
            session.counters.reset()

    def metric_registries(self) -> list[MetricsRegistry]:
        """This manager's registry plus every session's — the inputs
        ``metrics_report()`` merges into the one server-wide view."""
        with self._slots:
            sessions = list(self._sessions)
        return [self.metrics] + [session.counters for session in sessions]

    # -- inspection ----------------------------------------------------------

    @property
    def active_sessions(self) -> int:
        with self._slots:
            return self._active

    def io_report(self) -> dict[str, Any]:
        """The database's report plus network and per-session counters."""
        report = dict(self.db.io_report())
        snapshot = self.stats.snapshot()
        report["net_messages"] = snapshot["messages"]
        report["net_bytes"] = snapshot["bytes_sent"]
        report["net_comm_time_ms"] = snapshot["comm_time_ms"]
        with self._slots:
            report["serve_sessions_peak"] = self._peak
            sessions = list(self._sessions)
        for session in sessions:
            for counter, value in session.counters:
                report[f"session:{session.name}:{counter}"] = value
        return report

    def __repr__(self) -> str:
        return (f"SessionManager({self.active_sessions}/"
                f"{self.max_sessions} active, admission={self.admission})")


# ---------------------------------------------------------------------------
# checkin helpers: temporary-surrogate remapping
# ---------------------------------------------------------------------------

def _is_temp(value: Any, creations) -> bool:
    return isinstance(value, Surrogate) and \
        any(temp == value for temp, _v in creations)


def _mentions_temp(value: Any, creations) -> bool:
    if _is_temp(value, creations):
        return True
    if isinstance(value, list):
        return any(_mentions_temp(item, creations) for item in value)
    return False


def _remap(values: dict[str, Any],
           mapping: dict[Surrogate, Surrogate]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in values.items():
        if isinstance(value, Surrogate):
            out[key] = mapping.get(value, value)
        elif isinstance(value, list):
            out[key] = [mapping.get(v, v) if isinstance(v, Surrogate) else v
                        for v in value]
        else:
            out[key] = value
    return out
