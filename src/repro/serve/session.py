"""Multi-session serving: many clients multiplexed onto one PRIMA.

The workstation–server coupling of the paper checks molecules out to
engineering workstations; this module grows that single-caller façade
into a **serving subsystem**: a :class:`SessionManager` multiplexes many
concurrent client sessions onto one :class:`~repro.db.Prima` instance.

Each :class:`Session` owns

* a **top-level transaction** (:mod:`repro.txn`) as its *write* lock
  scope — DML takes X on the target atom type in a *subtransaction*,
  the lock inherited upward and retained until the session closes, so
  two sessions writing the same type conflict loudly; checkins run in
  short-lived top-level transactions that commit — and release their
  atom-level X locks — immediately, preserving the optimistic
  last-writer-wins checkout protocol.  Reads take **no locks at all**:
  opening a cursor pins a *snapshot* of the atom-version epoch
  (:mod:`repro.access.snapshots`) and the pipeline reads that
  consistent state for its whole life, no matter what writers commit
  concurrently;
* a set of **server cursors** (:mod:`repro.serve.cursor`) streaming lazy
  ResultSet pipelines to the client in fetch-size batches;
* a set of **server-side prepared statements**: PREPARE ships the MQL
  text once and returns a handle (:class:`RemotePreparedStatement`
  client-side); EXECUTE_PREPARED re-executes it with fresh placeholder
  bindings — the request carries only the handle id + values, and the
  server binds its cached, catalog-versioned plan (the shared
  :class:`~repro.data.prepared.PlanCache` also sits under plain OPEN
  messages, so even unprepared repeated text skips parse+plan);
* **per-session counters**, merged into :meth:`SessionManager.io_report`
  (and mirrored as ``serve_*`` aggregates into the shared access-system
  counters, so ``Prima.io_report()`` shows serving activity alongside
  the operator counters).

**Admission control.**  ``max_sessions`` bounds concurrency; the
``admission`` knob decides what happens at the limit: ``"reject"``
raises :class:`~repro.errors.SessionLimitError` immediately, ``"queue"``
blocks the opener until a slot frees (optionally bounded by
``queue_timeout`` seconds).

**Threading model.**  Messages of one session are serialised by a
per-session lock; the engine-touching part of every message runs under
the manager's :class:`~repro.util.rwlock.ReadWriteLock`.  Read-only
messages (OPEN / FETCH / REOPEN / CLOSE / PREPARE / EXPLAIN) take the
**shared reader side** — any number of sessions fetch batches truly
concurrently, each against its pinned snapshot epoch — while writes
(DML subtransactions, checkin application) take the **exclusive writer
side**, which also covers the copy-on-write preservation of pre-images
for the pinned snapshots.  The old session-wide ``engine_lock`` (one
RLock over *everything*, reads included) is gone; what remains of it
is exactly this narrow writer/epoch-publish mutex.  The network model
and stats are thread-safe (see :mod:`repro.coupling.network`).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable

from repro.access.encoding import encoded_size
from repro.data.prepared import PreparedStatement
from repro.data.result import ResultSet
from repro.errors import (
    CouplingError,
    SessionLimitError,
    SessionStateError,
)
from repro.mad.molecule import Molecule
from repro.mad.types import Surrogate
from repro.mql.ast import (
    DeleteStatement,
    InsertStatement,
    ModifyStatement,
)
from repro.serve.cursor import (
    ACK_BYTES,
    CONTROL_REQUEST_BYTES,
    FETCH_REQUEST_BYTES,
    RemoteCursor,
    ServerCursor,
    batch_bytes,
)
from repro.txn import Transaction, TransactionManager
from repro.util.rwlock import ReadWriteLock
from repro.util.stats import Counters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.coupling.network import NetworkModel
    from repro.db import Prima

#: Sentinel: "use the manager's default fetch size" — callers that
#: want to defer the batching decision to the server's knob pass
#: this instead of an explicit size/None.
DEFAULT_FETCH_SIZE = object()

#: Wire size of one server-side statement handle (id + parameter
#: signature) in a PREPARE response.
STATEMENT_HANDLE_BYTES = 16


def _lock_resource(atom_type: str) -> tuple[str, str]:
    """The lock-table resource of one atom type (kept distinct from
    surrogate resources)."""
    return ("atom_type", atom_type)


def _bindings_bytes(args: tuple, params: dict[str, Any] | None) -> int:
    """Wire size of one execution's parameter values (EXECUTE_PREPARED
    requests ship bindings, never statement text)."""
    payload = {f"p{i}": value for i, value in enumerate(args)}
    if params:
        payload.update(params)
    return encoded_size(payload) if payload else 0


class Session:
    """One client session: transaction scope, cursors, counters."""

    def __init__(self, manager: "SessionManager", name: str) -> None:
        self.manager = manager
        self.name = name
        self.txn: Transaction = manager.txns.begin()
        self.counters = Counters()
        self.closed = False
        self._cursors: dict[int, ServerCursor] = {}
        self._next_cursor = 0
        #: Server-side prepared-statement handles of this session.
        self._statements: dict[int, PreparedStatement] = {}
        self._next_statement = 0
        #: Serialises this session's messages (the per-session half of
        #: the serving thread model).
        self._lock = threading.RLock()

    # -- internals -----------------------------------------------------------

    def _require_open(self) -> None:
        if self.closed:
            raise SessionStateError(f"session {self.name!r} is closed")

    def _bill(self, nbytes: int) -> None:
        self.manager.stats.account(self.manager.model, nbytes)

    def _count(self, name: str, amount: float = 1) -> None:
        """Bump a per-session counter and its ``serve_*`` aggregate."""
        self.counters.bump(name, amount)
        self.manager.db.access.counters.bump(f"serve_{name}", amount)

    @property
    def _db(self) -> "Prima":
        return self.manager.db

    def _cursor_of(self, cursor_id: int) -> ServerCursor:
        try:
            return self._cursors[cursor_id]
        except KeyError:
            raise SessionStateError(
                f"session {self.name!r} has no cursor #{cursor_id}"
            ) from None

    def _statement_of(self, statement_id: int) -> PreparedStatement:
        try:
            return self._statements[statement_id]
        except KeyError:
            raise SessionStateError(
                f"session {self.name!r} has no prepared statement "
                f"#{statement_id}"
            ) from None

    # -- the cursor protocol, server side ------------------------------------

    def _open_pipeline(self, prepared: PreparedStatement, args: tuple,
                       params: dict[str, Any] | None, fetch_size: int | None
                       ) -> tuple[ServerCursor, list[Molecule], bool, str]:
        """Bind a prepared SELECT, open its server cursor, fetch the
        first batch.  The caller holds the engine's reader side.

        No lock is taken on the root atom type: the pipeline is compiled
        against a pinned snapshot of the atom-version epoch, so it keeps
        reading the state as of this open — concurrent commits neither
        block it nor leak into it.  The pin is released when the
        pipeline closes (client CLOSE, exhaustion teardown, or session
        close)."""
        if prepared.kind != "select":
            raise SessionStateError(
                "remote cursors serve SELECT statements only "
                "(use Session.execute for DML)"
            )
        plan = prepared.bind(args, params or {})
        snapshot = self._db.data.open_snapshot()
        try:
            result = ResultSet(
                source=plan.compile(self._db.data, snapshot=snapshot),
                plan_text=plan.explain())
        except BaseException:
            snapshot.release()
            raise
        result.on_close(lambda _op: snapshot.release())
        self._count("snapshot_reads")
        self._next_cursor += 1
        cursor = ServerCursor(self, self._next_cursor, result,
                              plan.root_access.atom_type)
        self._cursors[cursor.cursor_id] = cursor
        if fetch_size is None:
            batch = cursor.fetch_all()
            exhausted = True
        else:
            batch, exhausted = cursor.fetch(fetch_size)
        return cursor, batch, exhausted, result.plan_text

    def _open_message(self, mql: str, fetch_size: int | None,
                      args: tuple = (),
                      params: dict[str, Any] | None = None
                      ) -> tuple[ServerCursor, list[Molecule], bool, str]:
        """OPEN: compile the pipeline, deliver the first batch.

        The statement text rides in the request; preparation runs
        through the shared plan cache, so repeated text skips parse+plan
        even over this one-shot message.
        """
        self._bill(len(mql.encode("utf-8"))
                   + _bindings_bytes(args, params))          # request
        with self.manager.engine.reader():
            prepared = self._db.data.prepare(mql)
            cursor, batch, exhausted, plan_text = self._open_pipeline(
                prepared, args, params, fetch_size)
        self._bill(batch_bytes(batch))                       # response
        self._count("cursors_opened")
        self._count("fetch_messages")
        self._count("rows_streamed", len(batch))
        return cursor, batch, exhausted, plan_text

    def _fetch_message(self, cursor_id: int,
                       count: int) -> tuple[list[Molecule], bool]:
        """FETCH(n): the next batch of an open cursor."""
        with self._lock:
            self._require_open()
            self._bill(FETCH_REQUEST_BYTES)                  # request
            cursor = self._cursor_of(cursor_id)
            with self.manager.engine.reader():
                batch, exhausted = cursor.fetch(count)
            self._bill(batch_bytes(batch))                   # response
            self._count("fetch_messages")
            self._count("rows_streamed", len(batch))
            return batch, exhausted

    def _reopen_message(self, cursor_id: int, fetch_size: int | None
                        ) -> tuple[list[Molecule], bool]:
        """REOPEN: restart the stream (truncation raises, as locally)."""
        with self._lock:
            self._require_open()
            self._bill(CONTROL_REQUEST_BYTES)                # request
            cursor = self._cursor_of(cursor_id)
            with self.manager.engine.reader():
                cursor.reopen()
                if fetch_size is None:
                    batch = cursor.fetch_all()
                    exhausted = True
                else:
                    batch, exhausted = cursor.fetch(fetch_size)
            self._bill(batch_bytes(batch))                   # response
            self._count("fetch_messages")
            self._count("rows_streamed", len(batch))
            return batch, exhausted

    def _close_message(self, cursor_id: int) -> None:
        """CLOSE: release the server pipeline for good."""
        with self._lock:
            if self.closed:
                return   # session teardown already released everything
            self._bill(CONTROL_REQUEST_BYTES)                # request
            cursor = self._cursors.pop(cursor_id, None)
            if cursor is not None:
                with self.manager.engine.reader():
                    cursor.close()
            self._bill(ACK_BYTES)                            # ack
            self._count("cursors_closed")

    # -- the prepared-statement protocol, server side ------------------------

    def _prepare_message(self, mql: str) -> tuple[int, PreparedStatement]:
        """PREPARE: ship the text once; the response is a statement
        handle.  Every later EXECUTE_PREPARED carries only the handle
        and the bindings — the text is never reshipped, and the server
        never re-plans it (until a catalog-version bump forces a
        transparent re-plan)."""
        with self._lock:
            self._require_open()
            self._bill(len(mql.encode("utf-8")))             # request
            with self.manager.engine.reader():
                prepared = self._db.data.prepare(mql)
            self._next_statement += 1
            statement_id = self._next_statement
            self._statements[statement_id] = prepared
            self._bill(STATEMENT_HANDLE_BYTES)               # response
            self._count("statements_prepared")
            return statement_id, prepared

    def _execute_prepared_message(self, statement_id: int, args: tuple,
                                  params: dict[str, Any] | None,
                                  fetch_size: int | None
                                  ) -> tuple[ServerCursor, list[Molecule],
                                             bool, str]:
        """EXECUTE_PREPARED (SELECT): open a cursor over a server-side
        statement handle — the request ships handle + bindings only."""
        with self._lock:
            self._require_open()
            prepared = self._statement_of(statement_id)
            self._bill(CONTROL_REQUEST_BYTES
                       + _bindings_bytes(args, params))      # request
            with self.manager.engine.reader():
                cursor, batch, exhausted, plan_text = self._open_pipeline(
                    prepared, args, params, fetch_size)
            self._bill(batch_bytes(batch))                   # response
            self._count("cursors_opened")
            self._count("fetch_messages")
            self._count("rows_streamed", len(batch))
            self._count("prepared_executions")
            return cursor, batch, exhausted, plan_text

    def _execute_prepared_dml(self, statement_id: int, args: tuple,
                              params: dict[str, Any] | None) -> ResultSet:
        """EXECUTE_PREPARED (DML): bind and run under the same
        subtransaction/lock discipline as :meth:`execute`."""
        with self._lock:
            self._require_open()
            prepared = self._statement_of(statement_id)
            self._bill(CONTROL_REQUEST_BYTES
                       + _bindings_bytes(args, params))      # request
            result = self._execute_locked(prepared, args, params)
            self._bill(ACK_BYTES)                            # ack
            self._count("statements")
            self._count("prepared_executions")
            return result

    def _deallocate_message(self, statement_id: int) -> None:
        """DEALLOCATE: drop a server-side statement handle."""
        with self._lock:
            if self.closed:
                return   # session teardown already released everything
            self._bill(CONTROL_REQUEST_BYTES)                # request
            self._statements.pop(statement_id, None)
            self._bill(ACK_BYTES)                            # ack

    # -- client entry points -------------------------------------------------

    def _resolve_fetch_size(self, fetch_size: Any) -> int | None:
        if fetch_size is DEFAULT_FETCH_SIZE:
            fetch_size = self.manager.default_fetch_size
        if fetch_size is not None and fetch_size < 1:
            raise SessionStateError("fetch_size must be >= 1 (or None)")
        return fetch_size

    def open_cursor(self, mql: str, fetch_size: Any = DEFAULT_FETCH_SIZE,
                    on_arrival: Callable[[Molecule], None] | None = None,
                    args: tuple = (),
                    params: dict[str, Any] | None = None) -> RemoteCursor:
        """OPEN a remote streaming cursor over ``mql``.

        ``fetch_size=None`` ships the whole set in the open response (the
        set-oriented one-message-pair mode); an integer streams batches
        of that size with one-batch prefetch.  ``on_arrival`` runs per
        molecule as its batch reaches the client.  ``args``/``params``
        bind ``?`` / ``:name`` placeholders for this one execution; a
        statement executed repeatedly is better served by
        :meth:`prepare` (the text ships once).
        """
        with self._lock:
            self._require_open()
            fetch_size = self._resolve_fetch_size(fetch_size)
            cursor, batch, exhausted, plan_text = \
                self._open_message(mql, fetch_size, args=args, params=params)
            return RemoteCursor(self, cursor.cursor_id, fetch_size,
                                batch, exhausted, plan_text=plan_text,
                                on_arrival=on_arrival)

    def query(self, mql: str, fetch_size: Any = DEFAULT_FETCH_SIZE,
              on_arrival: Callable[[Molecule], None] | None = None,
              args: tuple = (),
              params: dict[str, Any] | None = None) -> ResultSet:
        """A lazy :class:`ResultSet` streaming over a remote cursor."""
        cursor = self.open_cursor(mql, fetch_size=fetch_size,
                                  on_arrival=on_arrival,
                                  args=args, params=params)
        return ResultSet(source=cursor, plan_text=cursor.plan_text)

    def prepare(self, mql: str) -> "RemotePreparedStatement":
        """PREPARE ``mql`` server-side; the client keeps a handle.

        The statement text crosses the wire exactly once.  Every
        ``handle.execute(...)`` afterwards is an EXECUTE_PREPARED
        message shipping only the handle id and the placeholder
        bindings — the server binds its cached, catalog-versioned plan
        and streams the cursor as usual (no re-parse, no re-plan, no
        text).
        """
        statement_id, prepared = self._prepare_message(mql)
        return RemotePreparedStatement(self, statement_id, prepared)

    def _execute_locked(self, prepared: PreparedStatement, args: tuple,
                        params: dict[str, Any] | None) -> ResultSet:
        """Run a non-SELECT prepared statement in a *subtransaction*.

        The subtransaction is the lock scope: an X lock on the target
        atom type is taken for the statement — a peer session's open
        cursor on that type (S) conflicts loudly, while this session's
        own read locks never do (Moss's ancestor rule: the session
        transaction is the writer's parent).  On success the lock is
        inherited upward, so the session *retains* X on every type it
        wrote until it closes; a failing statement aborts the
        subtransaction and releases it.  Write effects themselves become
        visible immediately, like a checkin — to *new* snapshots; open
        cursors keep their pinned epoch.  The exclusive writer side of
        the engine lock covers the statement, its copy-on-write
        pre-image preservation, and the epoch publish.
        """
        with self.manager.engine.writer():
            writer = self.txn.begin_nested()
            try:
                target = self._statement_target(prepared.statement)
                if target is not None:
                    self.manager.txns.locks.acquire(
                        writer, _lock_resource(target), "X")
                result = prepared.execute(*args, **(params or {}))
                result.materialize()
            except BaseException:
                writer.abort()   # drops the writer's locks
                raise
            writer.commit()      # the session inherits the X lock
        return result

    def execute(self, mql: str, *args: Any, **params: Any) -> ResultSet:
        """Execute one statement; DML runs in a *subtransaction* (see
        :meth:`_execute_locked` for the lock discipline).  SELECTs route
        to :meth:`query`.  ``*args``/``**params`` bind placeholders.
        """
        with self._lock:
            self._require_open()
            with self.manager.engine.reader():
                prepared = self._db.data.prepare(mql)
            if prepared.kind == "select":
                return self.query(mql, args=args, params=params or None)
            self._bill(len(mql.encode("utf-8"))
                       + _bindings_bytes(args, params))      # request
            result = self._execute_locked(prepared, args, params)
            self._bill(ACK_BYTES)                            # ack
            self._count("statements")
            return result

    def _explain_message(self, mql: str, args: tuple,
                         params: dict[str, Any] | None) -> str:
        """EXPLAIN: the server renders the processing plan as a
        first-class message pair — request carries the text (+ optional
        bindings), response carries the plan text.  No pipeline opens,
        no cursor, no locks beyond the shared reader side."""
        with self._lock:
            self._require_open()
            self._bill(len(mql.encode("utf-8"))
                       + _bindings_bytes(args, params))      # request
            with self.manager.engine.reader():
                prepared = self._db.data.prepare(mql)
                if prepared.kind != "select":
                    raise SessionStateError(
                        "EXPLAIN supports SELECT statements only"
                    )
                text = prepared.explain(args=args, params=params or {})
            self._bill(len(text.encode("utf-8")))            # response
            self._count("explains")
            return text

    def explain(self, mql: str, *args: Any, **params: Any) -> str:
        """The server-side processing plan of ``mql``, over the wire.

        ``args``/``params`` optionally bind placeholders so the rendered
        plan shows concrete ranges instead of ``?n`` markers."""
        return self._explain_message(mql, args, params or None)

    def _statement_target(self, statement) -> str | None:
        if isinstance(statement, InsertStatement):
            return statement.type_name
        if isinstance(statement, (DeleteStatement, ModifyStatement)):
            structure = self._db.data.validator.resolve_structure(
                statement.from_clause)
            return structure.atom_type
        return None

    def parallel_query(self, mql: str, processors: int = 4,
                       partitions: int | None = None,
                       max_workers: int | None = None,
                       mode: str | None = None):
        """Run one SELECT with semantic parallelism *inside* this session.

        The construction workers take the **shared reader side** of the
        manager's engine lock per DU — they run concurrently with every
        other session's cursors and with each other, excluding only
        writers.  ``mode`` selects the worker fabric: ``'threads'``
        (latency overlap under the GIL) or ``'processes'`` (a
        ``fork``-based pool, real CPU parallelism — each child reads its
        inherited copy-on-write image of the engine, a natural
        snapshot).  ``mode``/``max_workers`` default to the manager's
        ``parallel_mode``/``parallel_workers`` knobs.
        """
        self._require_open()
        from repro.parallel import parallel_select
        return parallel_select(self._db, mql, processors=processors,
                               partitions=partitions,
                               max_workers=(max_workers
                                            if max_workers is not None
                                            else self.manager.parallel_workers),
                               mode=mode if mode is not None
                               else self.manager.parallel_mode,
                               engine_lock=self.manager.engine.reader())

    # -- checkin (the write half of the coupling protocol) -------------------

    def checkin(self, modifications: dict[Surrogate, dict[str, Any]],
                deletions: list[Surrogate] | None = None,
                creations: list[tuple[Surrogate, dict[str, Any]]] | None
                = None) -> dict[Surrogate, Surrogate]:
        """Apply a workstation's object buffer in one message pair.

        ``creations`` carries atoms created locally under *temporary*
        surrogates; they are inserted here and the mapping temporary →
        real surrogate is returned (and billed into the ack message).
        References among new atoms are remapped, in two phases so cyclic
        n:m references among creations work.

        The application runs in a short-lived transaction under the
        engine lock: every touched atom is X-locked (and undo-logged) for
        the duration, the commit releases the locks — concurrent
        checkins serialise at message granularity and the later one wins
        (the optimistic object-buffer protocol).
        """
        with self._lock:
            self._require_open()
            payload = sum(encoded_size(values)
                          for values in modifications.values())
            payload += sum(encoded_size(values)
                           for _t, values in creations or [])
            payload += 16 * len(deletions or [])
            self._bill(payload)                              # request
            with self.manager.engine.writer():
                mapping = self._apply_checkin(modifications,
                                              deletions or [],
                                              creations or [])
            self._bill(8 + 24 * len(mapping))                # ack + mapping
            self._count("checkins")
            return mapping

    def _apply_checkin(self, modifications, deletions,
                       creations) -> dict[Surrogate, Surrogate]:
        db = self._db
        writer = self.manager.txns.begin()
        try:
            mapping: dict[Surrogate, Surrogate] = {}
            deferred_refs: list[tuple[Surrogate, dict[str, Any]]] = []
            for temp, values in creations:
                plain = {k: v for k, v in values.items()
                         if not _mentions_temp(v, creations)}
                refs = {k: v for k, v in values.items() if k not in plain}
                real = writer.insert(temp.atom_type, plain)
                mapping[temp] = real
                if refs:
                    deferred_refs.append((real, refs))
            for real, refs in deferred_refs:
                writer.modify(real, _remap(refs, mapping))
            for surrogate, values in modifications.items():
                if not db.access.atoms.exists(surrogate):
                    raise CouplingError(
                        f"checkin of unknown atom {surrogate}"
                    )
                writer.modify(surrogate, _remap(values, mapping))
            for surrogate in deletions:
                writer.delete(surrogate)
        except BaseException:
            # Selective recovery: roll the half-applied checkin back.
            writer.abort()
            raise
        writer.commit()
        db.commit()
        # The commit boundary of the snapshot clock: cursors opened
        # from here on see the checkin; pinned ones keep their epoch.
        db.data.publish_data_version()
        return mapping

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release every cursor, commit the session transaction (freeing
        its locks), and return the admission slot."""
        with self._lock:
            if self.closed:
                return
            with self.manager.engine.reader():
                for cursor in self._cursors.values():
                    cursor.close()
                self._cursors.clear()
            self._statements.clear()
            self.closed = True
            self.txn.commit()
        self.manager._release(self)  # noqa: SLF001

    def abort(self) -> None:
        """Abort the session transaction (undoing logged effects) and
        release everything."""
        with self._lock:
            if self.closed:
                return
            with self.manager.engine.reader():
                for cursor in self._cursors.values():
                    cursor.close()
                self._cursors.clear()
            self._statements.clear()
            self.closed = True
            # Undoing logged effects writes to the engine — exclusive.
            with self.manager.engine.writer():
                self.txn.abort()
        self.manager._release(self)  # noqa: SLF001

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is not None and not self.closed:
            self.abort()
        else:
            self.close()

    @property
    def open_cursors(self) -> int:
        return len(self._cursors)

    @property
    def open_statements(self) -> int:
        """Server-side prepared-statement handles currently held."""
        return len(self._statements)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (f"Session({self.name!r}, {state}, "
                f"{len(self._cursors)} cursor(s))")


class RemotePreparedStatement:
    """The client half of a server-side prepared statement.

    Created by :meth:`Session.prepare` — the PREPARE request shipped the
    statement text once; this handle re-executes it with fresh bindings
    over EXECUTE_PREPARED messages that carry only the statement id and
    the parameter values.  SELECT handles stream their result through
    the ordinary remote-cursor machinery (first batch in the response,
    double-buffered prefetch, the full client cursor contract); DML
    handles execute under the session's subtransaction lock discipline.
    """

    def __init__(self, session: Session, statement_id: int,
                 prepared: PreparedStatement) -> None:
        self._session = session
        self.statement_id = statement_id
        self.text = prepared.text
        self.kind = prepared.kind
        self.param_count = prepared.param_count
        self.param_names = prepared.param_names
        self._closed = False

    def _require_open(self) -> None:
        if self._closed:
            raise SessionStateError(
                f"prepared statement #{self.statement_id} is deallocated"
            )

    def open_cursor(self, *args: Any,
                    fetch_size: Any = DEFAULT_FETCH_SIZE,
                    on_arrival: Callable[[Molecule], None] | None = None,
                    **params: Any) -> RemoteCursor:
        """EXECUTE_PREPARED: a streaming cursor over one execution."""
        self._require_open()
        session = self._session
        with session._lock:  # noqa: SLF001
            session._require_open()  # noqa: SLF001
            fetch_size = session._resolve_fetch_size(fetch_size)  # noqa: SLF001
        cursor, batch, exhausted, plan_text = \
            session._execute_prepared_message(  # noqa: SLF001
                self.statement_id, args, params, fetch_size)
        return RemoteCursor(session, cursor.cursor_id, fetch_size,
                            batch, exhausted, plan_text=plan_text,
                            on_arrival=on_arrival)

    def execute(self, *args: Any, fetch_size: Any = DEFAULT_FETCH_SIZE,
                on_arrival: Callable[[Molecule], None] | None = None,
                **params: Any) -> ResultSet:
        """Re-execute with fresh bindings (no text, no re-plan).

        SELECTs return the usual lazy :class:`ResultSet` over a remote
        cursor; DML returns its outcome set.
        """
        self._require_open()
        if self.kind != "select":
            return self._session._execute_prepared_dml(  # noqa: SLF001
                self.statement_id, args, params)
        cursor = self.open_cursor(*args, fetch_size=fetch_size,
                                  on_arrival=on_arrival, **params)
        return ResultSet(source=cursor, plan_text=cursor.plan_text)

    def close(self) -> None:
        """DEALLOCATE the server-side handle (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._session._deallocate_message(self.statement_id)  # noqa: SLF001

    def __enter__(self) -> "RemotePreparedStatement":
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "deallocated" if self._closed else "prepared"
        return (f"RemotePreparedStatement(#{self.statement_id}, {state}, "
                f"{self.text!r})")


class SessionManager:
    """Session lifecycle + admission control over one Prima instance."""

    def __init__(self, db: "Prima", model: "NetworkModel | None" = None,
                 max_sessions: int = 8, admission: str = "reject",
                 queue_timeout: float | None = None,
                 default_fetch_size: int | None = None,
                 parallel_mode: str = "threads",
                 parallel_workers: int | None = None) -> None:
        # Imported here, not at module level: the coupling package's
        # server rides on this module, so a top-level import would cycle.
        from repro.coupling.network import NetworkModel, NetworkStats
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if admission not in ("reject", "queue"):
            raise ValueError(
                f"admission must be 'reject' or 'queue', got {admission!r}"
            )
        if parallel_mode not in ("threads", "processes"):
            raise ValueError(
                f"parallel_mode must be 'threads' or 'processes', got "
                f"{parallel_mode!r}"
            )
        self.db = db
        self.model = model if model is not None else NetworkModel()
        self.stats = NetworkStats()
        self.max_sessions = max_sessions
        self.admission = admission
        self.queue_timeout = queue_timeout
        #: None: whole set in the open response; int: streaming batches.
        self.default_fetch_size = default_fetch_size
        #: Worker fabric of :meth:`Session.parallel_query`: 'threads'
        #: or 'processes' (fork-based pool); per-call ``mode`` overrides.
        self.parallel_mode = parallel_mode
        #: Default worker cap of :meth:`Session.parallel_query`.
        self.parallel_workers = parallel_workers
        self.txns = TransactionManager(db.access)
        #: The narrow writer/epoch-publish mutex that replaced the old
        #: session-wide engine RLock: read-only messages share the
        #: reader side (snapshot-pinned pipelines fetch concurrently),
        #: writes and their epoch publish take the exclusive writer
        #: side.  ``engine.max_concurrent_readers`` records the proof
        #: that reads actually overlap.
        self.engine = ReadWriteLock()
        self._slots = threading.Condition()
        self._active = 0
        self._peak = 0
        self._session_seq = 0
        #: Every session ever opened (for io_report merging) and the
        #: labels reserved so far (uniqueness under concurrency).
        self._sessions: list[Session] = []
        self._names: set[str] = set()
        attach = getattr(db, "attach_network", None)
        if attach is not None:
            attach(self.stats)
        attach_sessions = getattr(db, "attach_sessions", None)
        if attach_sessions is not None:
            attach_sessions(self)

    # -- lifecycle -----------------------------------------------------------

    def open(self, name: str | None = None,
             timeout: float | None = None) -> Session:
        """Open one session, subject to admission control.

        With ``admission='reject'`` a full server raises
        :class:`~repro.errors.SessionLimitError` immediately; with
        ``'queue'`` the opener waits until a slot frees (``timeout``
        overrides the manager's ``queue_timeout``).
        """
        wait_limit = timeout if timeout is not None else self.queue_timeout
        with self._slots:
            if self._active >= self.max_sessions:
                if self.admission == "reject":
                    raise SessionLimitError(
                        f"server at max_sessions={self.max_sessions}"
                    )
                self.db.access.counters.bump("serve_sessions_queued")
                while self._active >= self.max_sessions:
                    if not self._slots.wait(timeout=wait_limit):
                        raise SessionLimitError(
                            f"queued session timed out after "
                            f"{wait_limit}s (max_sessions="
                            f"{self.max_sessions})"
                        )
            self._active += 1
            if self._active > self._peak:
                self._peak = self._active
            self._session_seq += 1
            label = name if name is not None else f"s{self._session_seq}"
            if label in self._names:
                # Reserve a unique label atomically with the slot, so
                # two concurrent opens under one name cannot collide
                # (their io_report keys would silently merge).
                label = f"{label}#{self._session_seq}"
            self._names.add(label)
        session = Session(self, label)
        with self._slots:
            self._sessions.append(session)
        self.db.access.counters.bump("serve_sessions_opened")
        return session

    def _release(self, _session: Session) -> None:
        with self._slots:
            self._active -= 1
            self._slots.notify_all()

    def close_all(self) -> None:
        """Close every still-open session (releasing their pipelines)."""
        for session in list(self._sessions):
            if not session.closed:
                session.close()

    def reset_accounting(self) -> None:
        """Zero this manager's accounting: network stats, the
        per-session counters of every session ever opened, and the
        concurrency peak — so benchmark phases start from zero.
        (``Prima.reset_accounting`` calls this for attached managers.)"""
        self.stats.reset()
        with self._slots:
            sessions = list(self._sessions)
            self._peak = self._active
        for session in sessions:
            session.counters.reset()

    # -- inspection ----------------------------------------------------------

    @property
    def active_sessions(self) -> int:
        with self._slots:
            return self._active

    def io_report(self) -> dict[str, Any]:
        """The database's report plus network and per-session counters."""
        report = dict(self.db.io_report())
        snapshot = self.stats.snapshot()
        report["net_messages"] = snapshot["messages"]
        report["net_bytes"] = snapshot["bytes_sent"]
        report["net_comm_time_ms"] = snapshot["comm_time_ms"]
        with self._slots:
            report["serve_sessions_peak"] = self._peak
            sessions = list(self._sessions)
        for session in sessions:
            for counter, value in session.counters:
                report[f"session:{session.name}:{counter}"] = value
        return report

    def __repr__(self) -> str:
        return (f"SessionManager({self.active_sessions}/"
                f"{self.max_sessions} active, admission={self.admission})")


# ---------------------------------------------------------------------------
# checkin helpers: temporary-surrogate remapping
# ---------------------------------------------------------------------------

def _is_temp(value: Any, creations) -> bool:
    return isinstance(value, Surrogate) and \
        any(temp == value for temp, _v in creations)


def _mentions_temp(value: Any, creations) -> bool:
    if _is_temp(value, creations):
        return True
    if isinstance(value, list):
        return any(_mentions_temp(item, creations) for item in value)
    return False


def _remap(values: dict[str, Any],
           mapping: dict[Surrogate, Surrogate]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in values.items():
        if isinstance(value, Surrogate):
            out[key] = mapping.get(value, value)
        elif isinstance(value, list):
            out[key] = [mapping.get(v, v) if isinstance(v, Surrogate) else v
                        for v in value]
        else:
            out[key] = value
    return out
