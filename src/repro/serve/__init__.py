"""The serving layer: multi-session server with remote streaming cursors.

Grows the paper's workstation–server coupling into a serving subsystem:
a :class:`SessionManager` multiplexes many concurrent client sessions
(each with its own transaction/lock scope and counters) onto one
:class:`~repro.db.Prima` instance, :class:`RemoteCursor` streams lazy
result-set pipelines across the coupling network in fetch-size batches
(OPEN / FETCH(n) / CLOSE, double-buffered prefetch), and
:class:`ServeLoop` interleaves whole client jobs on threads.

Entry points: ``Prima.serve()`` returns a configured manager;
:class:`~repro.coupling.PrimaServer` and
:class:`~repro.coupling.Workstation` ride on sessions and remote cursors
for checkout/checkin.
"""

from repro.serve.cursor import RemoteCursor, ServerCursor
from repro.serve.loop import ServeLoop
from repro.serve.session import (
    DEFAULT_FETCH_SIZE,
    RemotePreparedStatement,
    Session,
    SessionManager,
)

__all__ = [
    "DEFAULT_FETCH_SIZE",
    "RemoteCursor",
    "RemotePreparedStatement",
    "ServeLoop",
    "ServerCursor",
    "Session",
    "SessionManager",
]
