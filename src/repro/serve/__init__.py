"""The serving layer: a daemonised multi-session server with one
explicit wire protocol and one client API.

Grows the paper's workstation–server coupling into a serving subsystem:

* :mod:`repro.serve.protocol` — the typed request/response messages of
  every client exchange (OPEN / FETCH(n) / CLOSE, PREPARE /
  EXECUTE_PREPARED, EXECUTE, EXPLAIN, CHECKIN, HELLO / PING / GOODBYE)
  plus the one codec that frames them and bills them against the
  network cost model — identically on every transport;
* :class:`SessionManager` / :class:`Session` — many concurrent client
  sessions (own transaction/lock scope, counters, admission control,
  idle/lease resource hygiene) multiplexed onto one
  :class:`~repro.db.Prima`; :meth:`Session.handle` is the
  transport-agnostic dispatch;
* :class:`RemoteCursor` — lazy result-set pipelines streamed in
  fetch-size batches with double-buffered prefetch (and optional
  network-model-tuned batch sizes, :mod:`repro.serve.tuning`);
* :class:`~repro.serve.daemon.PrimaDaemon` — the asyncio event-loop
  transport: many clients over a socket from a single thread, bounded
  send queues for backpressure;
* :class:`ServeLoop` — the synchronous thread-per-session transport for
  in-process job batches;
* :func:`connect` / :class:`Connection` — the one client entry point,
  identical over the in-process and daemon-socket transports.
"""

from repro.errors import ServeError
from repro.serve import protocol
from repro.serve.connection import Connection, connect
from repro.serve.cursor import RemoteCursor, ServerCursor
from repro.serve.daemon import PrimaDaemon, serve_daemon
from repro.serve.loop import ServeLoop
from repro.serve.session import (
    DEFAULT_FETCH_SIZE,
    RemotePreparedStatement,
    Session,
    SessionManager,
)

__all__ = [
    "Connection",
    "DEFAULT_FETCH_SIZE",
    "PrimaDaemon",
    "RemoteCursor",
    "RemotePreparedStatement",
    "ServeError",
    "ServeLoop",
    "ServerCursor",
    "Session",
    "SessionManager",
    "connect",
    "protocol",
    "serve_daemon",
]
