"""The serving wire protocol: typed messages and one codec.

Every exchange between a client and a PRIMA server — OPEN / FETCH(n) /
REOPEN / CLOSE, PREPARE / EXECUTE_PREPARED / DEALLOCATE, EXECUTE,
EXPLAIN, CHECKIN, and the connection-management HELLO / PING / GOODBYE —
is one *request dataclass* in, one *response dataclass* out.  The
protocol used to live implicitly inside ``Session._*_message`` methods
(argument lists in, tuples out, billing inlined at every call site);
lifting it into explicit message types makes the session core
transport-agnostic: the in-process transport hands the very same objects
to :meth:`repro.serve.Session.handle` that the asyncio daemon decodes
off a socket.

Two independent byte notions live here:

* :func:`wire_size` — the **modelled** size of a message under the
  coupling network's cost model (:class:`~repro.coupling.NetworkModel`).
  This is what ``io_report``'s ``net_messages`` / ``net_bytes`` /
  ``net_comm_time_ms`` bill, and because the model sits in the codec it
  bills **identically on every transport** — an in-process OPEN and a
  daemon-socket OPEN account the same bytes.
* :func:`encode` / :func:`decode` + the length-prefixed framing
  (:func:`pack_frame`, the sync :func:`send_message` /
  :func:`recv_message` and the async helpers in
  :mod:`repro.serve.aio`) — the **physical** representation on a real
  socket.  Messages are pickled (the same mechanism the fork-based
  parallel pool uses to ship molecules between processes), framed by a
  4-byte big-endian length.  The daemon binds to loopback by default;
  like any pickle endpoint it must not be exposed to untrusted peers.

Errors cross the wire as :class:`WireError` carrying the exception class
name from :mod:`repro.errors`; :func:`raise_wire_error` re-raises the
matching class client-side, so ``CursorStateError`` (truncation),
``SessionLimitError`` (admission) and friends keep their types across a
socket exactly as they do in process.
"""

from __future__ import annotations

import pickle
import socket
import struct
from dataclasses import dataclass, field
from typing import Any, NoReturn

from repro.access.encoding import encoded_size
from repro.mad.molecule import Molecule
from repro.mad.types import Surrogate

import repro.errors as _errors
from repro.errors import ProtocolError, SessionError

# ---------------------------------------------------------------------------
# Modelled message sizes (bytes) — the cost-model constants of the
# cursor protocol (benchmark A9's message/byte accounting).
# ---------------------------------------------------------------------------

#: FETCH(n): cursor id + count + framing.
FETCH_REQUEST_BYTES = 24
#: Small control requests (REOPEN, CLOSE, DEALLOCATE, HELLO, PING, ...).
CONTROL_REQUEST_BYTES = 16
#: Bare acknowledgement responses.
ACK_BYTES = 8
#: Header of one response batch.
BATCH_HEADER_BYTES = 8
#: One server-side statement handle (id + parameter signature).
STATEMENT_HANDLE_BYTES = 16

#: ``fetch_size`` wire values beyond an integer: ``"default"`` defers to
#: the server's knob, ``"auto"`` asks the server to tune the batch size
#: from its network model (see :mod:`repro.serve.tuning`), ``None``
#: ships the whole set in the open response.
AUTO_FETCH_SIZE = "auto"
DEFAULT_FETCH_SIZE_WIRE = "default"

#: Hard ceiling on one physical frame (a runaway/corrupt length prefix
#: must not allocate unboundedly).
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def batch_bytes(batch: list[Molecule]) -> int:
    """Modelled wire size of one response batch: encoded atoms + header."""
    total = BATCH_HEADER_BYTES
    for molecule in batch:
        for _label, atom in molecule.atoms():
            total += encoded_size(atom)
    return total


def bindings_bytes(args: tuple, params: dict[str, Any] | None) -> int:
    """Modelled wire size of one execution's parameter values."""
    payload = {f"p{i}": value for i, value in enumerate(args)}
    if params:
        payload.update(params)
    return encoded_size(payload) if payload else 0


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------

@dataclass
class Request:
    """Base class of client → server messages."""


@dataclass
class Response:
    """Base class of server → client messages."""


# -- connection management ---------------------------------------------------

@dataclass
class Hello(Request):
    """Open a session (admission control applies).  The daemon requires
    this as the first frame of a connection; the in-process transport
    opens its session directly on the manager instead."""
    client: str | None = None


@dataclass
class Welcome(Response):
    """HELLO succeeded: the session label and the server's default
    fetch-size knob (``None`` whole-set, int, or ``"auto"``)."""
    session: str = ""
    default_fetch_size: int | str | None = None
    #: Shard count of the serving database (1: a single engine; >1: a
    #: sharded cluster behind the same protocol).
    shards: int = 1


@dataclass
class Ping(Request):
    """Keepalive: refreshes the session lease without doing work."""


@dataclass
class Pong(Response):
    session: str = ""


@dataclass
class Goodbye(Request):
    """Close the session (``abort=True`` rolls its transaction back)."""
    abort: bool = False


@dataclass
class Ack(Response):
    """Bare acknowledgement."""


# -- the cursor protocol -----------------------------------------------------

@dataclass
class Open(Request):
    """OPEN: compile a SELECT, deliver the first batch in the reply."""
    mql: str = ""
    fetch_size: int | str | None = DEFAULT_FETCH_SIZE_WIRE
    args: tuple = ()
    params: dict[str, Any] | None = None


@dataclass
class OpenReply(Response):
    """The open cursor: id, first batch, and the *resolved* fetch size
    (the server's default, or the auto-tuned value) the client should
    use for subsequent FETCH messages."""
    cursor_id: int = 0
    batch: list[Molecule] = field(default_factory=list)
    exhausted: bool = True
    plan_text: str = ""
    fetch_size: int | None = None
    #: Shard the query routed to (``None``: single engine, or a
    #: cluster scatter-gather across all shards).
    shard: int | None = None


@dataclass
class Fetch(Request):
    """FETCH(n): the next batch of an open cursor."""
    cursor_id: int = 0
    count: int = 1


@dataclass
class Batch(Response):
    batch: list[Molecule] = field(default_factory=list)
    exhausted: bool = True


@dataclass
class Reopen(Request):
    """REOPEN: restart the stream (truncation raises, as locally)."""
    cursor_id: int = 0
    fetch_size: int | None = None


@dataclass
class CloseCursor(Request):
    """CLOSE: release the server pipeline for good."""
    cursor_id: int = 0


# -- prepared statements -----------------------------------------------------

@dataclass
class Prepare(Request):
    """PREPARE: ship the text once; the reply is a statement handle."""
    mql: str = ""


@dataclass
class PrepareReply(Response):
    statement_id: int = 0
    kind: str = "select"
    text: str = ""
    param_count: int = 0
    param_names: tuple = ()


@dataclass
class ExecutePrepared(Request):
    """EXECUTE_PREPARED: handle + bindings only — the text never
    reships.  SELECT handles answer with :class:`OpenReply`, DML handles
    with :class:`Executed`."""
    statement_id: int = 0
    args: tuple = ()
    params: dict[str, Any] | None = None
    fetch_size: int | str | None = DEFAULT_FETCH_SIZE_WIRE


@dataclass
class Deallocate(Request):
    """DEALLOCATE: drop a server-side statement handle."""
    statement_id: int = 0


# -- one-shot statements -----------------------------------------------------

@dataclass
class Execute(Request):
    """EXECUTE: one statement, text in the request.  SELECTs answer with
    :class:`OpenReply` (the server routes), DML with :class:`Executed`."""
    mql: str = ""
    args: tuple = ()
    params: dict[str, Any] | None = None


@dataclass
class Executed(Response):
    """DML outcome: the materialised result surface of the statement."""
    molecules: list[Molecule] = field(default_factory=list)
    affected: int = 0
    inserted: Surrogate | None = None


@dataclass
class Explain(Request):
    """EXPLAIN: request carries text (+ optional bindings), reply the
    rendered plan.  No cursor opens."""
    mql: str = ""
    args: tuple = ()
    params: dict[str, Any] | None = None


@dataclass
class ExplainReply(Response):
    text: str = ""


# -- observability -----------------------------------------------------------

@dataclass
class Stats(Request):
    """STATS: pull the server's metrics registry and slow-query log.
    ``reset=True`` zeroes the server-side accounting after the read
    (a sampling client's read-and-rearm)."""
    reset: bool = False


@dataclass
class StatsReply(Response):
    """The server's observability export: the merged
    ``metrics_report()`` (counters + gauges + histograms — the same
    schema on every transport) and the slow-log entries."""
    metrics: dict[str, Any] = field(default_factory=dict)
    slowlog: list[dict[str, Any]] = field(default_factory=list)


@dataclass
class Trace(Request):
    """TRACE: run a SELECT to exhaustion under a forced trace; the
    reply carries the rendered span tree.  No cursor opens."""
    mql: str = ""
    args: tuple = ()
    params: dict[str, Any] | None = None


@dataclass
class TraceReply(Response):
    """The query's span tree: rendered text plus the JSON-able dict
    (``Span.to_dict()`` — durations in ms)."""
    text: str = ""
    tree: dict[str, Any] = field(default_factory=dict)


# -- checkout/checkin (the coupling protocol) --------------------------------

@dataclass
class Checkin(Request):
    """Apply a workstation's object buffer in one message pair."""
    modifications: dict[Surrogate, dict[str, Any]] = field(
        default_factory=dict)
    deletions: list[Surrogate] = field(default_factory=list)
    creations: list[tuple[Surrogate, dict[str, Any]]] = field(
        default_factory=list)


@dataclass
class CheckinReply(Response):
    """The temporary → real surrogate mapping of applied creations."""
    mapping: dict[Surrogate, Surrogate] = field(default_factory=dict)


# -- live queries (server push) ----------------------------------------------

@dataclass
class Subscribe(Request):
    """Register a prepared SELECT for server-pushed invalidation.

    ``deliver`` picks the payload: ``"notify"`` pushes a bare epoch
    delta (the client decides whether to re-fetch); ``"requery"``
    re-runs the statement against a fresh snapshot on every fire and
    ships the new result version in the NOTIFY frame.
    """
    mql: str = ""
    args: tuple = ()
    params: dict[str, Any] | None = None
    deliver: str = "notify"


@dataclass
class SubscribeReply(Response):
    """The registered subscription: its handle, the dependency set the
    server extracted from the plan, and the catalog version stamped at
    registration."""
    subscription_id: int = 0
    types: tuple = ()
    catalog_version: int = 0


@dataclass
class Unsubscribe(Request):
    """Drop a subscription (idempotent — unknown ids Ack too)."""
    subscription_id: int = 0


@dataclass
class Notify(Response):
    """An **unsolicited** server → client push: the commit at ``epoch``
    touched ``types`` intersecting the subscription's dependency set.
    ``molecules`` carries the re-evaluated result for
    ``deliver="requery"`` subscriptions (``None`` for bare notifies);
    ``coalesced`` counts additional commits merged into this frame.
    Never carries a correlation id — see :func:`correlation_of`.
    """
    subscription_id: int = 0
    epoch: int = 0
    types: tuple = ()
    catalog_changed: bool = False
    coalesced: int = 0
    molecules: list[Molecule] | None = None


# -- errors ------------------------------------------------------------------

@dataclass
class WireError(Response):
    """A server-side exception, shipped by class name + message."""
    kind: str = "SessionError"
    message: str = ""


# ---------------------------------------------------------------------------
# Correlation ids — pairing replies with requests on a pushy socket
# ---------------------------------------------------------------------------
#
# Once the server may emit unsolicited Notify frames, "the next frame
# after my request" is no longer "my reply".  Clients stamp each request
# with a correlation id, the daemon echoes it onto the matching reply,
# and Notify frames carry none — so a transport can skim pushes out of
# the byte stream without ever mistaking one for a reply.  The id rides
# as a plain instance attribute (never a dataclass field): constructors
# keep their positional signatures, old peers ignore it, and pickle
# carries it via ``__dict__`` when present.

def set_correlation(message: Request | Response, correlation_id: int) -> None:
    """Stamp ``message`` with a correlation id (in-place)."""
    message.correlation_id = correlation_id  # type: ignore[attr-defined]


def correlation_of(message: Request | Response) -> int | None:
    """The message's correlation id, or ``None`` (unsolicited push /
    pre-correlation peer)."""
    return getattr(message, "correlation_id", None)


# ---------------------------------------------------------------------------
# Modelled accounting — one place, every transport
# ---------------------------------------------------------------------------

def wire_size(message: Request | Response) -> int:
    """The modelled byte size of one message under the network cost
    model.  Billing every transport through this single function is what
    makes ``net_bytes`` / ``net_comm_time_ms`` transport-invariant."""
    if isinstance(message, Open):
        return (len(message.mql.encode("utf-8"))
                + bindings_bytes(message.args, message.params))
    if isinstance(message, (OpenReply, Batch)):
        return batch_bytes(message.batch)
    if isinstance(message, Fetch):
        return FETCH_REQUEST_BYTES
    if isinstance(message, (Prepare,)):
        return len(message.mql.encode("utf-8"))
    if isinstance(message, PrepareReply):
        return STATEMENT_HANDLE_BYTES
    if isinstance(message, ExecutePrepared):
        return (CONTROL_REQUEST_BYTES
                + bindings_bytes(message.args, message.params))
    if isinstance(message, (Execute, Explain, Trace)):
        return (len(message.mql.encode("utf-8"))
                + bindings_bytes(message.args, message.params))
    if isinstance(message, ExplainReply):
        return len(message.text.encode("utf-8"))
    if isinstance(message, TraceReply):
        return len(message.text.encode("utf-8")) \
            + encoded_size(message.tree)
    if isinstance(message, StatsReply):
        return (encoded_size(message.metrics)
                + sum(encoded_size(entry) for entry in message.slowlog))
    if isinstance(message, Checkin):
        payload = sum(encoded_size(values)
                      for values in message.modifications.values())
        payload += sum(encoded_size(values)
                       for _temp, values in message.creations)
        payload += 16 * len(message.deletions)
        return payload
    if isinstance(message, CheckinReply):
        return 8 + 24 * len(message.mapping)
    if isinstance(message, Subscribe):
        return (len(message.mql.encode("utf-8"))
                + bindings_bytes(message.args, message.params))
    if isinstance(message, SubscribeReply):
        return STATEMENT_HANDLE_BYTES
    if isinstance(message, Notify):
        if message.molecules is not None:
            return BATCH_HEADER_BYTES + batch_bytes(message.molecules)
        return CONTROL_REQUEST_BYTES
    if isinstance(message, (Executed, Ack, Pong, Welcome)):
        return ACK_BYTES
    if isinstance(message, WireError):
        return len(message.message.encode("utf-8"))
    # Reopen, CloseCursor, Deallocate, Hello, Ping, Goodbye — small
    # fixed-size control messages.
    return CONTROL_REQUEST_BYTES


# ---------------------------------------------------------------------------
# Physical representation — pickle + length-prefixed frames
# ---------------------------------------------------------------------------

def encode(message: Request | Response) -> bytes:
    """Serialise one message for a real socket."""
    return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)


def decode(payload: bytes) -> Request | Response:
    """Deserialise one message; malformed frames raise
    :class:`~repro.errors.ProtocolError`."""
    try:
        message = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - normalised below
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, (Request, Response)):
        raise ProtocolError(
            f"frame decoded to {type(message).__name__}, not a protocol "
            f"message"
        )
    return message


def pack_frame(payload: bytes) -> bytes:
    """Prefix one encoded message with its 4-byte big-endian length."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(payload)) + payload


def frame_length(header: bytes) -> int:
    """Decode a length prefix, guarding against runaway sizes."""
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte "
            f"limit"
        )
    return length


def send_message(sock: socket.socket, message: Request | Response) -> None:
    """Write one framed message to a blocking socket."""
    sock.sendall(pack_frame(encode(message)))


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Request | Response | None:
    """Read one framed message from a blocking socket (None at EOF)."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    payload = _recv_exact(sock, frame_length(header))
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    return decode(payload)


# ---------------------------------------------------------------------------
# Error transport
# ---------------------------------------------------------------------------

def wire_error(exc: BaseException) -> WireError:
    """Wrap a server-side exception for shipping."""
    return WireError(kind=type(exc).__name__, message=str(exc))


def raise_wire_error(error: WireError) -> NoReturn:
    """Re-raise a shipped server error under its original class.

    The class is looked up by name in :mod:`repro.errors`; an unknown
    (non-PRIMA) class degrades to :class:`~repro.errors.SessionError`
    with the original name preserved in the message.
    """
    cls = getattr(_errors, error.kind, None)
    if isinstance(cls, type) and issubclass(cls, _errors.PrimaError):
        raise cls(error.message)
    raise SessionError(f"{error.kind}: {error.message}")
