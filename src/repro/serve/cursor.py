"""Remote streaming cursors: the serving layer's wire protocol.

A served SELECT is not shipped as one monolithic molecule set; it is an
**OPEN / FETCH(n) / CLOSE** conversation over the coupling network's cost
model.  The server side (:class:`ServerCursor`) keeps the lazy
:class:`~repro.data.result.ResultSet` pipeline open and delivers it in
``fetch_size`` batches; the client side (:class:`RemoteCursor`) honours
the operator cursor protocol (``next()``/``close()``/``rewind()``), so a
plain ResultSet wraps it and the whole client-side cursor contract —
lazy iteration, fetch caching, close-while-pending truncation — holds
unchanged across the wire.

Message inventory (every message is billed against the network model):

=========  ===============================================================
OPEN       request carries the MQL text; the response carries the
           *first batch* (open-with-fetch), so a whole-set cursor
           (``fetch_size=None``) costs exactly one message pair — the
           set-oriented MAD interface of benchmark A9
FETCH(n)   small request; response carries up to ``n`` molecules and an
           exhausted flag (a short batch implies exhaustion)
REOPEN     restart the server pipeline at the first molecule (pipeline
           breakers replay their cached run); small request + ack
CLOSE      release the server pipeline for good; small request + ack
=========  ===============================================================

**Double buffering.**  With a bounded ``fetch_size`` the client cursor
keeps at most two batches in flight: the batch the caller is consuming
and one *prefetched* batch requested as soon as consumption of the
current batch begins.  At most one batch (``fetch_size`` molecules) is
therefore constructed ahead of the batch being consumed, and the cursor
never holds more than ``2 * fetch_size`` undelivered molecules
(``max_in_flight`` records the high-water mark) — so the execution
pipeline's early-termination machinery (LIMIT, TopK bound pushdown)
keeps paying off end-to-end: a client that stops consuming stops the
server's molecule construction at most one batch later.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.access.encoding import encoded_size
from repro.errors import SessionStateError
from repro.mad.molecule import Molecule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.data.result import ResultSet
    from repro.serve.session import Session

#: Fixed message sizes of the cursor protocol (bytes).
FETCH_REQUEST_BYTES = 24
CONTROL_REQUEST_BYTES = 16
ACK_BYTES = 8
BATCH_HEADER_BYTES = 8


def batch_bytes(batch: list[Molecule]) -> int:
    """Wire size of one response batch: encoded atoms plus a header."""
    total = BATCH_HEADER_BYTES
    for molecule in batch:
        for _label, atom in molecule.atoms():
            total += encoded_size(atom)
    return total


class ServerCursor:
    """The server-resident half of one remote cursor.

    Owns the lazy ResultSet over the compiled pipeline and serves FETCH
    batches from it.  A close-hook on the pipeline root records the
    actual release (``serve_pipelines_released``), so tests and the
    serving benchmark can verify that a client CLOSE — truncating or
    not — really tore the operator tree down.
    """

    def __init__(self, session: "Session", cursor_id: int,
                 result: "ResultSet", root_type: str) -> None:
        self.session = session
        self.cursor_id = cursor_id
        self.result = result
        #: Root atom type of the plan (diagnostic; snapshot reads pin an
        #: epoch instead of locking the type).
        self.root_type = root_type
        #: Molecules shipped to the client so far.
        self.delivered = 0
        self.released = False
        result.on_close(self._on_pipeline_close)

    def _on_pipeline_close(self, _operator) -> None:
        self.released = True
        self.session.counters.bump("pipelines_released")
        self.session.manager.db.access.counters.bump(
            "serve_pipelines_released")

    def fetch(self, count: int) -> tuple[list[Molecule], bool]:
        """Deliver the next batch (at most ``count`` molecules) and
        whether the set is exhausted with it."""
        batch = self.result.fetch_many(count)
        self.delivered += len(batch)
        exhausted = self.result.exhausted or len(batch) < count
        return batch, exhausted

    def fetch_all(self) -> list[Molecule]:
        """Drain the whole set (the ``fetch_size=None`` open)."""
        batch: list[Molecule] = []
        while True:
            chunk = self.result.fetch_many(256)
            batch.extend(chunk)
            if len(chunk) < 256:
                break
        self.delivered += len(batch)
        return batch

    def reopen(self) -> None:
        """Restart the server pipeline at the first molecule.

        Raises :class:`~repro.errors.CursorStateError` when the cursor
        was closed while molecules were pending — the truncation half of
        the ResultSet contract, surfaced across the wire.
        """
        self.result.reopen()
        self.delivered = 0

    def close(self) -> None:
        """Release the pipeline (close-while-pending marks truncation)."""
        self.result.close()


class RemoteCursor:
    """The client half: a streaming cursor over the OPEN/FETCH/CLOSE wire.

    Honours the operator cursor protocol, so ``ResultSet(source=cursor)``
    turns it into an ordinary lazy result set.  ``on_arrival`` (if given)
    runs for every molecule *as its batch arrives* — before the caller
    pulls it — which is how a streaming checkout populates the
    workstation's object buffer incrementally.
    """

    def __init__(self, session: "Session", cursor_id: int,
                 fetch_size: int | None,
                 first_batch: list[Molecule], exhausted: bool,
                 plan_text: str = "",
                 on_arrival: Callable[[Molecule], None] | None = None) -> None:
        self._session = session
        self.cursor_id = cursor_id
        self._fetch_size = fetch_size
        self._on_arrival = on_arrival
        self._buffer: list[Molecule] = []
        self._pos = 0
        self._prefetched: list[Molecule] | None = None
        self._server_exhausted = exhausted
        self._closed = False
        self._close_hooks: list[Callable[[Any], None]] = []
        self.plan_text = plan_text
        #: Molecules delivered to the caller so far.
        self.rows_delivered = 0
        #: High-water mark of undelivered molecules held client-side —
        #: bounded by 2 * fetch_size (double buffering).
        self.max_in_flight = 0
        self._arrive(first_batch)
        self._buffer = first_batch
        self._note_in_flight()

    # -- bookkeeping ---------------------------------------------------------

    def _arrive(self, batch: list[Molecule]) -> None:
        if self._on_arrival is not None:
            for molecule in batch:
                self._on_arrival(molecule)

    def _in_flight(self) -> int:
        held = len(self._buffer) - self._pos
        if self._prefetched is not None:
            held += len(self._prefetched)
        return held

    def _note_in_flight(self) -> None:
        held = self._in_flight()
        if held > self.max_in_flight:
            self.max_in_flight = held

    def _fetch_batch(self) -> list[Molecule]:
        assert self._fetch_size is not None
        batch, exhausted = self._session._fetch_message(  # noqa: SLF001
            self.cursor_id, self._fetch_size)
        self._server_exhausted = exhausted
        self._arrive(batch)
        return batch

    # -- the operator cursor protocol ---------------------------------------

    def next(self) -> Molecule | None:
        """Deliver the next molecule (None at end or after close)."""
        if self._closed:
            return None
        if self._pos >= len(self._buffer):
            if self._prefetched is not None:
                # Swap in the standing prefetched batch.
                self._buffer, self._prefetched = self._prefetched, None
                self._pos = 0
            elif not self._server_exhausted and self._fetch_size is not None:
                self._buffer = self._fetch_batch()
                self._pos = 0
            else:
                return None
            if not self._buffer:
                return None
        molecule = self._buffer[self._pos]
        self._pos += 1
        self.rows_delivered += 1
        # One-batch prefetch: while the caller works through this batch,
        # the next one is already requested (double buffering) — never
        # more than one batch constructed ahead of the one in use.
        if self._prefetched is None and self._fetch_size is not None \
                and not self._server_exhausted:
            self._prefetched = self._fetch_batch()
            self._note_in_flight()
        return molecule

    def close(self) -> None:
        """Send CLOSE: the server releases its pipeline for good."""
        if self._closed:
            return
        self._closed = True
        self._buffer = []
        self._prefetched = None
        self._pos = 0
        self._session._close_message(self.cursor_id)  # noqa: SLF001
        hooks, self._close_hooks = self._close_hooks, []
        for hook in hooks:
            hook(self)

    def rewind(self) -> None:
        """Send REOPEN: restart the stream at the first molecule.

        Server-side truncation (the cursor was closed while molecules
        were pending) surfaces as
        :class:`~repro.errors.CursorStateError`.
        """
        if self._closed:
            raise SessionStateError(
                f"remote cursor #{self.cursor_id} is closed"
            )
        batch, exhausted = self._session._reopen_message(  # noqa: SLF001
            self.cursor_id, self._fetch_size)
        self._server_exhausted = exhausted
        self._arrive(batch)
        self._buffer = batch
        self._prefetched = None
        self._pos = 0
        self._note_in_flight()

    def explain(self) -> str:
        """The server pipeline's plan text, shipped with the OPEN response.

        EXPLAIN is a first-class protocol citizen: the plan text rides
        the wire once at open time, so inspecting it here costs no extra
        round trip (ad-hoc explanation without a cursor goes through
        :meth:`repro.serve.Session.explain` instead).
        """
        return self.plan_text

    def has_pending(self) -> bool | None:
        """Whether undelivered molecules remain — answered *without* a
        wire round trip when possible.

        ``ResultSet.close()`` consults this instead of probing with
        ``next()``: molecules standing in the client buffers, or a
        server known not to be exhausted, decide truncation for free —
        no FETCH (and no prefetch cascade) just to learn what the
        double-buffering state already proves.  ``None`` means unknown
        (the caller falls back to the one-molecule probe), which cannot
        occur in practice: a non-exhausted server always has a standing
        batch client-side, and a short batch flips the exhausted flag.
        """
        if self._closed:
            return False
        if self._in_flight() > 0:
            return True
        if self._server_exhausted:
            return False
        return None   # pragma: no cover - unreachable, see docstring

    def add_close_hook(self, hook: Callable[[Any], None]) -> None:
        """Operator-protocol parity: run ``hook`` once on ``close()``."""
        self._close_hooks.append(hook)

    def __iter__(self):
        while True:
            molecule = self.next()
            if molecule is None:
                return
            yield molecule

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "exhausted" if self._server_exhausted and not self._in_flight()
            else "streaming")
        return (f"RemoteCursor(#{self.cursor_id}, {state}, "
                f"{self.rows_delivered} delivered)")
