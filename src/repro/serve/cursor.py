"""Remote streaming cursors over the serving wire protocol.

A served SELECT is not shipped as one monolithic molecule set; it is an
**OPEN / FETCH(n) / CLOSE** conversation in the typed messages of
:mod:`repro.serve.protocol`.  The server side (:class:`ServerCursor`)
keeps the lazy :class:`~repro.data.result.ResultSet` pipeline open and
delivers it in ``fetch_size`` batches; the client side
(:class:`RemoteCursor`) honours the operator cursor protocol
(``next()``/``close()``/``rewind()``), so a plain ResultSet wraps it and
the whole client-side cursor contract — lazy iteration, fetch caching,
close-while-pending truncation — holds unchanged across the wire.

The client half is **transport-agnostic**: it holds nothing but a
transport exposing ``request(message) -> reply`` and speaks protocol
dataclasses through it.  In process that transport calls
:meth:`repro.serve.Session.handle` directly; against the daemon it
frames the same messages onto a socket — the cursor cannot tell the
difference (and is billed identically, because accounting lives in the
protocol codec).

**Double buffering.**  With a bounded ``fetch_size`` the client cursor
keeps at most two batches in flight: the batch the caller is consuming
and one *prefetched* batch requested as soon as consumption of the
current batch begins.  At most one batch (``fetch_size`` molecules) is
therefore constructed ahead of the batch being consumed, and the cursor
never holds more than ``2 * fetch_size`` undelivered molecules
(``max_in_flight`` records the high-water mark) — so the execution
pipeline's early-termination machinery (LIMIT, TopK bound pushdown)
keeps paying off end-to-end: a client that stops consuming stops the
server's molecule construction at most one batch later.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SessionStateError
from repro.mad.molecule import Molecule
from repro.serve import protocol
from repro.serve.protocol import (
    ACK_BYTES,
    BATCH_HEADER_BYTES,
    CONTROL_REQUEST_BYTES,
    FETCH_REQUEST_BYTES,
    STATEMENT_HANDLE_BYTES,
    batch_bytes,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.data.result import ResultSet
    from repro.serve.session import Session

__all__ = [
    "ACK_BYTES",
    "BATCH_HEADER_BYTES",
    "CONTROL_REQUEST_BYTES",
    "FETCH_REQUEST_BYTES",
    "STATEMENT_HANDLE_BYTES",
    "RemoteCursor",
    "ServerCursor",
    "batch_bytes",
]


class ServerCursor:
    """The server-resident half of one remote cursor.

    Owns the lazy ResultSet over the compiled pipeline and serves FETCH
    batches from it.  A close-hook on the pipeline root records the
    actual release (``serve_pipelines_released``), so tests and the
    serving benchmark can verify that a client CLOSE — truncating or
    not — really tore the operator tree down.  ``last_used`` feeds the
    idle-cursor reaper: a cursor nobody fetches from within the
    manager's ``idle_cursor_timeout`` is closed server-side and its
    pipeline resources returned.
    """

    def __init__(self, session: "Session", cursor_id: int,
                 result: "ResultSet", root_type: str) -> None:
        self.session = session
        self.cursor_id = cursor_id
        self.result = result
        #: Root atom type of the plan (diagnostic; snapshot reads pin an
        #: epoch instead of locking the type).
        self.root_type = root_type
        #: Molecules shipped to the client so far.
        self.delivered = 0
        self.released = False
        #: Last client interaction (manager clock) — the idle reaper's
        #: decision input.
        self.last_used = session.manager._now()  # noqa: SLF001
        result.on_close(self._on_pipeline_close)

    def _on_pipeline_close(self, _operator) -> None:
        self.released = True
        self.session.counters.bump("pipelines_released")
        self.session.manager.db.access.counters.bump(
            "serve_pipelines_released")

    def touch(self) -> None:
        self.last_used = self.session.manager._now()  # noqa: SLF001

    def fetch(self, count: int) -> tuple[list[Molecule], bool]:
        """Deliver the next batch (at most ``count`` molecules) and
        whether the set is exhausted with it."""
        self.touch()
        batch = self.result.fetch_many(count)
        self.delivered += len(batch)
        exhausted = self.result.exhausted or len(batch) < count
        return batch, exhausted

    def fetch_all(self) -> list[Molecule]:
        """Drain the whole set (the ``fetch_size=None`` open)."""
        self.touch()
        batch: list[Molecule] = []
        while True:
            chunk = self.result.fetch_many(256)
            batch.extend(chunk)
            if len(chunk) < 256:
                break
        self.delivered += len(batch)
        return batch

    def reopen(self) -> None:
        """Restart the server pipeline at the first molecule.

        Raises :class:`~repro.errors.CursorStateError` when the cursor
        was closed while molecules were pending — the truncation half of
        the ResultSet contract, surfaced across the wire.
        """
        self.touch()
        self.result.reopen()
        self.delivered = 0

    def close(self) -> None:
        """Release the pipeline (close-while-pending marks truncation)."""
        self.result.close()


class RemoteCursor:
    """The client half: a streaming cursor speaking protocol messages.

    Honours the operator cursor protocol, so ``ResultSet(source=cursor)``
    turns it into an ordinary lazy result set.  ``on_arrival`` (if given)
    runs for every molecule *as its batch arrives* — before the caller
    pulls it — which is how a streaming checkout populates the
    workstation's object buffer incrementally.

    Constructed from the :class:`~repro.serve.protocol.OpenReply` of an
    OPEN or EXECUTE_PREPARED exchange; ``fetch_size`` is the *resolved*
    batch size the server answered with (its default knob, or the
    auto-tuned value of an ``"auto"`` open).
    """

    def __init__(self, transport, reply: protocol.OpenReply,
                 on_arrival: Callable[[Molecule], None] | None = None) -> None:
        self._transport = transport
        self.cursor_id = reply.cursor_id
        self._fetch_size = reply.fetch_size
        self._on_arrival = on_arrival
        self._buffer: list[Molecule] = []
        self._pos = 0
        self._prefetched: list[Molecule] | None = None
        self._server_exhausted = reply.exhausted
        self._closed = False
        self._close_hooks: list[Callable[[Any], None]] = []
        self.plan_text = reply.plan_text
        #: Shard index the pipeline was routed to (None: single engine,
        #: or a scatter-gather across all shards).
        self.shard = reply.shard
        #: Molecules delivered to the caller so far.
        self.rows_delivered = 0
        #: High-water mark of undelivered molecules held client-side —
        #: bounded by 2 * fetch_size (double buffering).
        self.max_in_flight = 0
        self._arrive(reply.batch)
        self._buffer = reply.batch
        self._note_in_flight()

    @property
    def fetch_size(self) -> int | None:
        """The resolved batch size this cursor fetches with (None:
        whole set shipped at open)."""
        return self._fetch_size

    # -- bookkeeping ---------------------------------------------------------

    def _arrive(self, batch: list[Molecule]) -> None:
        if self._on_arrival is not None:
            for molecule in batch:
                self._on_arrival(molecule)

    def _in_flight(self) -> int:
        held = len(self._buffer) - self._pos
        if self._prefetched is not None:
            held += len(self._prefetched)
        return held

    def _note_in_flight(self) -> None:
        held = self._in_flight()
        if held > self.max_in_flight:
            self.max_in_flight = held

    def _fetch_batch(self) -> list[Molecule]:
        assert self._fetch_size is not None
        reply = self._transport.request(
            protocol.Fetch(self.cursor_id, self._fetch_size))
        self._server_exhausted = reply.exhausted
        self._arrive(reply.batch)
        return reply.batch

    # -- the operator cursor protocol ---------------------------------------

    def next(self) -> Molecule | None:
        """Deliver the next molecule (None at end or after close)."""
        if self._closed:
            return None
        if self._pos >= len(self._buffer):
            if self._prefetched is not None:
                # Swap in the standing prefetched batch.
                self._buffer, self._prefetched = self._prefetched, None
                self._pos = 0
            elif not self._server_exhausted and self._fetch_size is not None:
                self._buffer = self._fetch_batch()
                self._pos = 0
            else:
                return None
            if not self._buffer:
                return None
        molecule = self._buffer[self._pos]
        self._pos += 1
        self.rows_delivered += 1
        # One-batch prefetch: while the caller works through this batch,
        # the next one is already requested (double buffering) — never
        # more than one batch constructed ahead of the one in use.
        if self._prefetched is None and self._fetch_size is not None \
                and not self._server_exhausted:
            self._prefetched = self._fetch_batch()
            self._note_in_flight()
        return molecule

    def close(self) -> None:
        """Send CLOSE: the server releases its pipeline for good."""
        if self._closed:
            return
        self._closed = True
        self._buffer = []
        self._prefetched = None
        self._pos = 0
        self._transport.request(protocol.CloseCursor(self.cursor_id))
        hooks, self._close_hooks = self._close_hooks, []
        for hook in hooks:
            hook(self)

    def rewind(self) -> None:
        """Send REOPEN: restart the stream at the first molecule.

        Server-side truncation (the cursor was closed while molecules
        were pending) surfaces as
        :class:`~repro.errors.CursorStateError`.
        """
        if self._closed:
            raise SessionStateError(
                f"remote cursor #{self.cursor_id} is closed"
            )
        reply = self._transport.request(
            protocol.Reopen(self.cursor_id, self._fetch_size))
        self._server_exhausted = reply.exhausted
        self._arrive(reply.batch)
        self._buffer = reply.batch
        self._prefetched = None
        self._pos = 0
        self._note_in_flight()

    def explain(self) -> str:
        """The server pipeline's plan text, shipped with the OPEN response.

        EXPLAIN is a first-class protocol citizen: the plan text rides
        the wire once at open time, so inspecting it here costs no extra
        round trip (ad-hoc explanation without a cursor goes through
        :meth:`repro.serve.Session.explain` instead).
        """
        return self.plan_text

    def has_pending(self) -> bool | None:
        """Whether undelivered molecules remain — answered *without* a
        wire round trip when possible.

        ``ResultSet.close()`` consults this instead of probing with
        ``next()``: molecules standing in the client buffers, or a
        server known not to be exhausted, decide truncation for free —
        no FETCH (and no prefetch cascade) just to learn what the
        double-buffering state already proves.  ``None`` means unknown
        (the caller falls back to the one-molecule probe), which cannot
        occur in practice: a non-exhausted server always has a standing
        batch client-side, and a short batch flips the exhausted flag.
        """
        if self._closed:
            return False
        if self._in_flight() > 0:
            return True
        if self._server_exhausted:
            return False
        return None   # pragma: no cover - unreachable, see docstring

    def add_close_hook(self, hook: Callable[[Any], None]) -> None:
        """Operator-protocol parity: run ``hook`` once on ``close()``."""
        self._close_hooks.append(hook)

    def __iter__(self):
        while True:
            molecule = self.next()
            if molecule is None:
                return
            yield molecule

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "exhausted" if self._server_exhausted and not self._in_flight()
            else "streaming")
        return (f"RemoteCursor(#{self.cursor_id}, {state}, "
                f"{self.rows_delivered} delivered)")
