"""Fetch-size auto-tuning from the network cost model.

A streaming cursor pays ``per_message_ms`` of fixed software overhead
for every FETCH round trip and holds up to ``2 * fetch_size`` molecules
in flight (double buffering) — so the batch size trades *per-message
overhead* against *in-flight construction*: too small and the fixed
message cost dominates (the record-at-a-time failure mode of benchmark
A9), too large and an abandoning client has paid for up to two oversized
batches of molecule construction it never consumes, and the first
molecule's latency grows with the batch.

The static ``fetch_size`` knob was a guess; :func:`tune_fetch_size`
derives the batch size from the :class:`~repro.coupling.NetworkModel`
itself.  Pick the smallest ``f`` whose fixed overhead is at most
``target_overhead`` of the whole message service time::

    per_message_ms <= target_overhead * (per_message_ms + f*row/bw)

i.e. ``f >= per_message_ms * bw * (1 - t) / (t * row_bytes)``.  The
result is clamped: ``min_size`` keeps degenerate tiny batches off the
wire, ``max_size`` bounds speculative construction (and client memory)
for abandoning consumers.

The server applies this adaptively: an ``"auto"`` OPEN fetches a small
*probe* batch, measures the mean encoded molecule size of the actual
result, and answers with the tuned size for all subsequent FETCHes (the
:class:`~repro.serve.protocol.OpenReply` carries it back).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.coupling.network import NetworkModel

#: First-batch size of an ``"auto"`` cursor: big enough to estimate the
#: molecule wire size, small enough that a tiny LIMIT query never
#: overshoots by much.
AUTO_PROBE_SIZE = 32

#: Fraction of a FETCH round trip the fixed per-message overhead may
#: consume at the tuned size.
TARGET_OVERHEAD = 0.2

#: Clamp bounds of the tuned size.
MIN_FETCH_SIZE = 8
MAX_FETCH_SIZE = 256


def tune_fetch_size(model: "NetworkModel", row_bytes: float,
                    target_overhead: float = TARGET_OVERHEAD,
                    min_size: int = MIN_FETCH_SIZE,
                    max_size: int = MAX_FETCH_SIZE) -> int:
    """The batch size balancing message overhead against in-flight work.

    ``row_bytes`` is the (estimated) encoded wire size of one molecule;
    the probe batch of an ``"auto"`` open supplies it from the actual
    result stream.
    """
    if row_bytes <= 0:
        return max_size
    if not 0 < target_overhead < 1:
        raise ValueError("target_overhead must be in (0, 1)")
    ideal = (model.per_message_ms * model.bytes_per_ms
             * (1 - target_overhead) / (target_overhead * row_bytes))
    return max(min_size, min(max_size, int(ideal)))
