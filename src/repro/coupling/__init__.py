"""Workstation-host coupling (paper, section 4; [HHMM87])."""

from repro.coupling.network import NetworkModel, NetworkStats
from repro.coupling.server import PrimaServer
from repro.coupling.workstation import ObjectBuffer, Workstation

__all__ = [
    "NetworkModel",
    "NetworkStats",
    "ObjectBuffer",
    "PrimaServer",
    "Workstation",
]
