"""The host side: PRIMA behind a message interface.

The server executes molecule queries on behalf of workstations and accepts
checked-in modifications at commit time (checkout/checkin, [KLMP84]).
Since the serving-layer rewrite the façade rides on :mod:`repro.serve`:
a :class:`~repro.serve.SessionManager` multiplexes the workstations (each
holding its own session with transaction/lock scope), queries stream
through remote cursors (OPEN / FETCH(n) / CLOSE over the network model),
and checkins run as short-lived transactions.  The historical surface is
preserved: ``query()`` with the default whole-set fetch still costs one
request and one response message (open-with-fetch), exactly the
set-oriented MAD interface of benchmark A9.
"""

from __future__ import annotations

from typing import Any

from repro.access.encoding import encoded_size
from repro.coupling.network import NetworkModel
from repro.data.result import ResultSet
from repro.db import Prima
from repro.mad.types import Surrogate
from repro.serve import DEFAULT_FETCH_SIZE, Session, SessionManager


class PrimaServer:
    """Message-oriented facade over a Prima instance.

    ``sessions`` is the serving subsystem underneath: workstations open
    their own sessions against it, while the server's direct entry
    points (``query``, ``checkin``, the record-at-a-time baseline) run on
    a lazily opened *service session*.  ``stats``/``model`` alias the
    manager's network accounting, so all traffic of all sessions lands in
    one place — per-session splits come from ``sessions.io_report()``.
    """

    def __init__(self, db: Prima, model: NetworkModel | None = None,
                 max_sessions: int = 8, admission: str = "reject",
                 fetch_size: int | None = None) -> None:
        self.db = db
        self.sessions = SessionManager(db, model=model,
                                       max_sessions=max_sessions,
                                       admission=admission,
                                       default_fetch_size=fetch_size)
        self.model = self.sessions.model
        self.stats = self.sessions.stats
        self._service: Session | None = None

    # -- internals ---------------------------------------------------------------

    def _message(self, nbytes: int) -> None:
        self.stats.account(self.model, nbytes)

    def _service_session(self) -> Session:
        """The server's own session for direct (non-workstation) calls."""
        if self._service is None or self._service.closed:
            self._service = self.sessions.open(name="service")
        return self._service

    def disconnect(self) -> None:
        """Close the service session: releases its cursors, its read
        locks (which would otherwise block sessions' DML on the queried
        types for the server's lifetime) and its admission slot.  The
        next direct call reconnects transparently."""
        if self._service is not None and not self._service.closed:
            self._service.close()

    # -- set-oriented interface (the MAD interface across the wire) -----------------

    def query(self, mql: str,
              fetch_size: Any = DEFAULT_FETCH_SIZE) -> ResultSet:
        """A molecule query over a remote streaming cursor.

        With ``fetch_size=None`` (the default when the server has no
        ``fetch_size`` knob set) the whole set ships in the open response
        — one request, one response, the paper's set-oriented coupling.
        An integer ``fetch_size`` streams the set in batches with
        one-batch prefetch instead (see :mod:`repro.serve.cursor`).
        """
        return self._service_session().query(mql, fetch_size=fetch_size)

    def checkin(self, modifications: dict[Surrogate, dict[str, Any]],
                deletions: list[Surrogate] | None = None,
                creations: list[tuple[Surrogate, dict[str, Any]]] | None
                = None) -> dict[Surrogate, Surrogate]:
        """Apply a workstation's object buffer in one message pair.

        Delegates to the service session's transactional checkin (see
        :meth:`repro.serve.Session.checkin`): creations are inserted
        under real surrogates (the temporary → real mapping is returned
        and billed into the ack), references among new atoms are
        remapped in two phases so cyclic n:m references work, and the
        whole application is undo-logged — a failing checkin rolls back
        cleanly.
        """
        return self._service_session().checkin(
            modifications, deletions=deletions, creations=creations)

    # -- record-at-a-time interface (the conventional baseline) ------------------------

    def query_roots(self, mql: str) -> list[Surrogate]:
        """Baseline step 1: ship only the qualifying root surrogates."""
        self._message(len(mql.encode("utf-8")))
        result = self.db.query(mql)
        roots = [molecule.surrogate for molecule in result]
        self._message(16 * max(len(roots), 1))
        return roots

    def fetch_atom(self, surrogate: Surrogate) -> dict[str, Any]:
        """Baseline step 2..n: one round trip per atom."""
        self._message(16)                                 # request
        values = self.db.access.get(surrogate)
        self._message(encoded_size(values))               # response
        return values

    def fetch_atoms(self, surrogates: list[Surrogate]
                    ) -> dict[Surrogate, dict[str, Any]]:
        """Fetch a *batch* of atoms in one message pair.

        The fix for the record-at-a-time N+1: instead of one round trip
        per atom, a closure traversal ships each BFS frontier as one
        request (16 bytes per surrogate) and receives all its atoms in
        one response — the message count drops from atoms to frontier
        levels (visible in :class:`NetworkStats`).
        """
        self._message(16 * max(len(surrogates), 1))       # request
        atoms = {surrogate: self.db.access.get(surrogate)
                 for surrogate in surrogates}
        self._message(sum(encoded_size(values)
                          for values in atoms.values()) or 8)  # response
        return atoms
