"""The host side: PRIMA behind a message interface.

The server executes molecule queries on behalf of workstations and accepts
checked-in modifications at commit time (checkout/checkin, [KLMP84]).
Every entry point accounts one request and one response message against the
network model.
"""

from __future__ import annotations

from typing import Any

from repro.access.encoding import encoded_size
from repro.coupling.network import NetworkModel, NetworkStats
from repro.data.result import ResultSet
from repro.db import Prima
from repro.errors import CouplingError
from repro.mad.types import Surrogate


class PrimaServer:
    """Message-oriented facade over a Prima instance."""

    def __init__(self, db: Prima, model: NetworkModel | None = None) -> None:
        self.db = db
        self.model = model if model is not None else NetworkModel()
        self.stats = NetworkStats()

    # -- internals ---------------------------------------------------------------

    def _message(self, nbytes: int) -> None:
        self.stats.account(self.model, nbytes)

    @staticmethod
    def _molecule_bytes(result: ResultSet) -> int:
        total = 0
        for molecule in result:
            for _label, atom in molecule.atoms():
                total += encoded_size(atom)
        return total

    # -- set-oriented interface (the MAD interface across the wire) -----------------

    def query(self, mql: str) -> ResultSet:
        """One request, one response carrying the complete molecule set."""
        self._message(len(mql.encode("utf-8")))          # request
        result = self.db.query(mql)
        self._message(self._molecule_bytes(result))      # response
        return result

    def checkin(self, modifications: dict[Surrogate, dict[str, Any]],
                deletions: list[Surrogate] | None = None,
                creations: list[tuple[Surrogate, dict[str, Any]]] | None
                = None) -> dict[Surrogate, Surrogate]:
        """Apply a workstation's object buffer in one message.

        ``creations`` carries atoms created locally under *temporary*
        surrogates; they are inserted here and the mapping temporary →
        real surrogate is returned (and billed into the ack message).
        References among new atoms are remapped, in two phases so cyclic
        n:m references among creations work.
        """
        payload = sum(encoded_size(values)
                      for values in modifications.values())
        payload += sum(encoded_size(values) for _t, values in creations or [])
        payload += 16 * len(deletions or [])
        self._message(payload)                            # request

        mapping: dict[Surrogate, Surrogate] = {}
        deferred_refs: list[tuple[Surrogate, dict[str, Any]]] = []
        for temp, values in creations or []:
            plain = {k: v for k, v in values.items()
                     if not _mentions_temp(v, creations or [])}
            refs = {k: v for k, v in values.items() if k not in plain}
            real = self.db.access.insert(temp.atom_type, plain)
            mapping[temp] = real
            if refs:
                deferred_refs.append((real, refs))
        for real, refs in deferred_refs:
            self.db.access.modify(real, _remap(refs, mapping))

        for surrogate, values in modifications.items():
            if not self.db.access.atoms.exists(surrogate):
                raise CouplingError(
                    f"checkin of unknown atom {surrogate}"
                )
            self.db.access.modify(surrogate, _remap(values, mapping))
        for surrogate in deletions or []:
            self.db.access.delete(surrogate)
        self.db.commit()
        self._message(8 + 24 * len(mapping))              # ack + mapping
        return mapping

    # -- record-at-a-time interface (the conventional baseline) ------------------------



    def query_roots(self, mql: str) -> list[Surrogate]:
        """Baseline step 1: ship only the qualifying root surrogates."""
        self._message(len(mql.encode("utf-8")))
        result = self.db.query(mql)
        roots = [molecule.surrogate for molecule in result]
        self._message(16 * max(len(roots), 1))
        return roots

    def fetch_atom(self, surrogate: Surrogate) -> dict[str, Any]:
        """Baseline step 2..n: one round trip per atom."""
        self._message(16)                                 # request
        values = self.db.access.get(surrogate)
        self._message(encoded_size(values))               # response
        return values

# ---------------------------------------------------------------------------
# checkin helpers: temporary-surrogate remapping
# ---------------------------------------------------------------------------

def _is_temp(value: Any, creations) -> bool:
    return isinstance(value, Surrogate) and \
        any(temp == value for temp, _v in creations)


def _mentions_temp(value: Any, creations) -> bool:
    if _is_temp(value, creations):
        return True
    if isinstance(value, list):
        return any(_mentions_temp(item, creations) for item in value)
    return False


def _remap(values: dict[str, Any],
           mapping: dict[Surrogate, Surrogate]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in values.items():
        if isinstance(value, Surrogate):
            out[key] = mapping.get(value, value)
        elif isinstance(value, list):
            out[key] = [mapping.get(v, v) if isinstance(v, Surrogate) else v
                        for v in value]
        else:
            out[key] = value
    return out
