"""Cost model of the workstation-host connection.

The original system coupled engineering workstations to a database server
over a LAN; the claim under test (benchmark A9) is that the *set-oriented*
MAD interface is a major prerequisite to reduce communication overhead.
The substitution (DESIGN.md §5) is a message/byte cost model: every request
or response is one message paying a fixed latency plus size/bandwidth.
Absolute parameters resemble a 1987 10-Mbit LAN with heavy per-message
software overhead; only the ratios matter.

Both classes are **thread-safe**: :class:`NetworkModel` is a frozen
(immutable) dataclass, and :class:`NetworkStats` guards its accumulation
with a lock — the serving layer (:mod:`repro.serve`) accounts messages
from many concurrent session threads against one stats object.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Service-time parameters (milliseconds / bytes-per-ms).

    Frozen, hence safely shared by any number of session threads.
    """

    #: Fixed software+protocol overhead per message.
    per_message_ms: float = 5.0
    #: Usable bandwidth (10 Mbit/s ≈ 1250 bytes/ms at protocol efficiency 1).
    bytes_per_ms: float = 1250.0

    def transfer_ms(self, nbytes: int) -> float:
        return self.per_message_ms + nbytes / self.bytes_per_ms


class NetworkStats:
    """Accumulated communication accounting of one coupling endpoint.

    ``account()`` is atomic under a lock: a bare ``+=`` on the shared
    counters would be a read-modify-write that loses updates when several
    serving sessions bill messages concurrently.
    """

    __slots__ = ("messages", "bytes_sent", "comm_time_ms", "_lock")

    def __init__(self) -> None:
        self.messages = 0
        self.bytes_sent = 0
        self.comm_time_ms = 0.0
        self._lock = threading.Lock()

    def __getstate__(self) -> dict[str, float | int]:
        # Locks are not picklable; persistence checkpoints recreate one.
        return {"messages": self.messages, "bytes_sent": self.bytes_sent,
                "comm_time_ms": self.comm_time_ms}

    def __setstate__(self, state) -> None:
        if isinstance(state, tuple):   # legacy __slots__ pickle shape
            state = state[1]
        self.messages = state.get("messages", 0)
        self.bytes_sent = state.get("bytes_sent", 0)
        self.comm_time_ms = state.get("comm_time_ms", 0.0)
        self._lock = threading.Lock()

    def account(self, model: NetworkModel, nbytes: int) -> None:
        with self._lock:
            self.messages += 1
            self.bytes_sent += nbytes
            self.comm_time_ms += model.transfer_ms(nbytes)

    def snapshot(self) -> dict[str, float | int]:
        with self._lock:
            return {
                "messages": self.messages,
                "bytes_sent": self.bytes_sent,
                "comm_time_ms": round(self.comm_time_ms, 3),
            }

    def reset(self) -> None:
        """Zero the accounting (the endpoint stays usable)."""
        with self._lock:
            self.messages = 0
            self.bytes_sent = 0
            self.comm_time_ms = 0.0
