"""Cost model of the workstation-host connection.

The original system coupled engineering workstations to a database server
over a LAN; the claim under test (benchmark A9) is that the *set-oriented*
MAD interface is a major prerequisite to reduce communication overhead.
The substitution (DESIGN.md §5) is a message/byte cost model: every request
or response is one message paying a fixed latency plus size/bandwidth.
Absolute parameters resemble a 1987 10-Mbit LAN with heavy per-message
software overhead; only the ratios matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NetworkModel:
    """Service-time parameters (milliseconds / bytes-per-ms)."""

    #: Fixed software+protocol overhead per message.
    per_message_ms: float = 5.0
    #: Usable bandwidth (10 Mbit/s ≈ 1250 bytes/ms at protocol efficiency 1).
    bytes_per_ms: float = 1250.0

    def transfer_ms(self, nbytes: int) -> float:
        return self.per_message_ms + nbytes / self.bytes_per_ms


@dataclass
class NetworkStats:
    """Accumulated communication accounting of one coupling session."""

    messages: int = 0
    bytes_sent: int = 0
    comm_time_ms: float = 0.0

    def account(self, model: NetworkModel, nbytes: int) -> None:
        self.messages += 1
        self.bytes_sent += nbytes
        self.comm_time_ms += model.transfer_ms(nbytes)

    def snapshot(self) -> dict[str, float | int]:
        return {
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "comm_time_ms": round(self.comm_time_ms, 3),
        }
