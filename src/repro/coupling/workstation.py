"""The workstation side: application layer with an object buffer.

Effective workstation-host coupling is a prime requirement for interactive
engineering applications (paper, section 4).  The application layer (AL)
runs close to the application: molecules are **checked out** into a local
*object buffer*, most DBMS work then happens locally (large buffer sizes,
locality of reference), and modified molecules move back to PRIMA at commit
time (**checkin**).

Every workstation holds its own **session** on the server's serving layer
(:mod:`repro.serve`): checkout drives a *remote streaming cursor*, and
checkin runs as a short transaction under the session scope.  Three
checkout shapes cover benchmark A9's comparison and the streaming mode the
serving layer adds:

* ``set_oriented=True`` (default, ``fetch_size=None``) — the whole
  molecule set ships in the cursor's open response: one query message,
  one response (the MAD interface);
* ``set_oriented=True`` with an integer ``fetch_size`` — the **checkout
  stream**: molecules arrive in fetch-size batches with one-batch
  prefetch, and the object buffer fills incrementally as the returned
  cursor is consumed — at most ``2 * fetch_size`` molecules are in
  flight, so abandoning the cursor stops server-side construction at
  most one batch later;
* ``set_oriented=False`` — the conventional record-at-a-time baseline:
  the root set is fetched first, then the atom closure round trip by
  round trip (``batched=True`` upgrades the closure to one message pair
  per BFS frontier via the server's ``fetch_atoms`` — the N+1 fix —
  while the default keeps the historical one-atom-per-trip baseline).
"""

from __future__ import annotations

from typing import Any

from repro.coupling.server import PrimaServer
from repro.data.result import ResultSet
from repro.errors import CouplingError
from repro.mad.molecule import Molecule
from repro.mad.types import Surrogate, reference_values
from repro.serve import DEFAULT_FETCH_SIZE, Session


class ObjectBuffer:
    """The workstation-resident cache of checked-out atoms."""

    def __init__(self) -> None:
        self._atoms: dict[Surrogate, dict[str, Any]] = {}
        self._dirty: set[Surrogate] = set()
        self.local_reads = 0
        self.local_writes = 0

    def __len__(self) -> int:
        return len(self._atoms)

    def __contains__(self, surrogate: Surrogate) -> bool:
        return surrogate in self._atoms

    def load(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        self._atoms[surrogate] = dict(values)

    def read(self, surrogate: Surrogate) -> dict[str, Any]:
        """Local read — no host communication."""
        try:
            values = self._atoms[surrogate]
        except KeyError:
            raise CouplingError(
                f"atom {surrogate} is not checked out"
            ) from None
        self.local_reads += 1
        return dict(values)

    def write(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        """Local modification — shipped to the host only at checkin."""
        if surrogate not in self._atoms:
            raise CouplingError(f"atom {surrogate} is not checked out")
        self._atoms[surrogate].update(values)
        self._dirty.add(surrogate)
        self.local_writes += 1

    def dirty_atoms(self) -> dict[Surrogate, dict[str, Any]]:
        return {s: dict(self._atoms[s]) for s in sorted(self._dirty)}

    def clear(self) -> None:
        self._atoms.clear()
        self._dirty.clear()


class Workstation:
    """One engineering workstation coupled to a PRIMA server."""

    def __init__(self, server: PrimaServer, name: str = "ws") -> None:
        self.server = server
        self.name = name
        self.buffer = ObjectBuffer()
        self._session: Session | None = None
        self._checked_out: list[Molecule] = []
        #: atoms created locally: temporary surrogate -> values.
        self._creations: dict[Surrogate, dict[str, Any]] = {}
        self._deletions: list[Surrogate] = []
        self._temp_counter = 0
        #: temp -> real mapping of the last commit.
        self.last_mapping: dict[Surrogate, Surrogate] = {}

    @property
    def session(self) -> Session:
        """This workstation's serving-layer session (opened lazily)."""
        if self._session is None or self._session.closed:
            self._session = self.server.sessions.open(name=self.name)
        return self._session

    def disconnect(self) -> None:
        """Close the session: releases cursors, locks, the admission
        slot.  Local state (object buffer, pending creations) survives —
        the next server interaction reconnects."""
        if self._session is not None and not self._session.closed:
            self._session.close()

    # -- checkout ------------------------------------------------------------------

    def checkout(self, mql: str, set_oriented: bool = True,
                 fetch_size: Any = DEFAULT_FETCH_SIZE,
                 batched: bool = False) -> ResultSet:
        """Fetch the molecules of ``mql`` into the object buffer.

        Set-oriented checkout opens a remote cursor on this workstation's
        session; every molecule is loaded into the object buffer *as its
        batch arrives at the workstation* — immediately for the default
        whole-set fetch, incrementally while the returned cursor is
        consumed for a streaming ``fetch_size``.
        """
        if set_oriented:
            cursor = self.session.open_cursor(
                mql, fetch_size=fetch_size, on_arrival=self._receive)
            return ResultSet(source=cursor, plan_text=cursor.plan_text)
        # Record-at-a-time baseline: roots first, then the closure —
        # atom by atom, or frontier-batched when ``batched`` is set.
        roots = self.server.query_roots(mql)
        for root in roots:
            self._fetch_closure(root, batched=batched)
        result = self.server.db.query(mql)   # shape only; atoms came singly
        for molecule in result:
            self._receive(molecule)
        return result

    def _receive(self, molecule: Molecule) -> None:
        """One checked-out molecule arrived at the workstation."""
        self._load_molecule(molecule)
        self._checked_out.append(molecule)

    def _fetch_closure(self, root: Surrogate, batched: bool = False) -> None:
        """Fetch ``root`` and everything it references.

        ``batched=True`` (the fixed protocol) ships each BFS frontier as
        one ``fetch_atoms`` message pair; the default replays the
        conventional one-atom-per-round-trip interface (the A9 baseline,
        N+1 round trips by design — matching :meth:`checkout`'s
        default, so the benchmark comparison stays honest)."""
        seen: set[Surrogate] = set()
        schema = self.server.db.schema

        def references(surrogate: Surrogate,
                       values: dict[str, Any]) -> list[Surrogate]:
            atom_type = schema.atom_type(surrogate.atom_type)
            out: list[Surrogate] = []
            for attr_name in atom_type.reference_attrs():
                out.extend(reference_values(atom_type.attr(attr_name),
                                            values.get(attr_name)))
            return out

        frontier = [root]
        while frontier:
            if batched:
                wanted = [s for s in dict.fromkeys(frontier)
                          if s not in seen]
                seen.update(wanted)
                frontier = []
                if not wanted:
                    continue
                for surrogate, values in \
                        self.server.fetch_atoms(wanted).items():
                    self.buffer.load(surrogate, values)
                    frontier.extend(t for t in references(surrogate, values)
                                    if t not in seen)
            else:
                surrogate = frontier.pop()
                if surrogate in seen:
                    continue
                seen.add(surrogate)
                values = self.server.fetch_atom(surrogate)
                self.buffer.load(surrogate, values)
                frontier.extend(t for t in references(surrogate, values)
                                if t not in seen)

    def _load_molecule(self, molecule: Molecule) -> None:
        self.buffer.load(molecule.surrogate, molecule.atom)
        for comps in molecule.components.values():
            for comp in comps:
                self._load_molecule(comp)

    # -- local work -------------------------------------------------------------------

    def read(self, surrogate: Surrogate) -> dict[str, Any]:
        """Read from the object buffer (locality of reference)."""
        return self.buffer.read(surrogate)

    def modify(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        """Modify locally; shipped at commit."""
        if surrogate in self._creations:
            self._creations[surrogate].update(values)
            self.buffer.local_writes += 1
            return
        self.buffer.write(surrogate, values)

    def create(self, type_name: str,
               values: dict[str, Any] | None = None) -> Surrogate:
        """Create a new atom *locally* under a temporary surrogate.

        Newly created molecules are moved back to PRIMA at commit time
        (paper, section 4); the temporary surrogate is remapped to a real
        one by the server and the mapping is applied to the caller's view.
        References may point at checked-out atoms or at other local
        creations (in any order — cycles included).
        """
        self._temp_counter += 1
        temp = Surrogate(type_name, -self._temp_counter)
        self._creations[temp] = dict(values or {})
        self.buffer.local_writes += 1
        return temp

    def delete(self, surrogate: Surrogate) -> None:
        """Delete locally; shipped at commit."""
        if surrogate in self._creations:
            del self._creations[surrogate]
            return
        if surrogate not in self.buffer:
            raise CouplingError(f"atom {surrogate} is not checked out")
        self._deletions.append(surrogate)

    # -- checkin ----------------------------------------------------------------------

    def commit(self) -> int:
        """Checkin: move modified and newly created molecules back to
        PRIMA in one message pair; returns the number of atoms applied."""
        dirty = self.buffer.dirty_atoms()
        cleaned: dict[Surrogate, dict[str, Any]] = {}
        schema = self.server.db.schema
        for surrogate, values in dirty.items():
            if surrogate in self._deletions:
                continue
            identifier = schema.atom_type(surrogate.atom_type).identifier_attr
            values.pop(identifier, None)
            cleaned[surrogate] = values
        creations = list(self._creations.items())
        deletions = list(self._deletions)
        applied = 0
        if cleaned or creations or deletions:
            mapping = self.session.checkin(cleaned, deletions=deletions,
                                           creations=creations)
            applied = len(cleaned) + len(creations) + len(deletions)
            self.last_mapping = mapping
        self.buffer.clear()
        self._creations = {}
        self._deletions = []
        self._checked_out = []
        return applied
