"""LDL executor: installs and drops tuning structures.

The statements only serve to improve performance — they are controlled by
the access system and are not visible to the application referencing the
MAD interface (paper, 2.3).  Tests assert this transparency: query results
are identical with and without any set of LDL structures.
"""

from __future__ import annotations

from repro.access.system import AccessSystem
from repro.data.validation import Validator
from repro.errors import ParseError
from repro.ldl.parser import (
    CreateAccessPath,
    CreateAtomCluster,
    CreatePartition,
    CreateSortOrder,
    DropStructure,
    LdlStatement,
    parse_ldl_script,
)


class LdlExecutor:
    """Applies parsed LDL statements to the access system."""

    def __init__(self, access: AccessSystem, validator: Validator) -> None:
        self._access = access
        self._validator = validator

    def execute(self, statement: LdlStatement) -> str:
        """Execute one statement; returns a short confirmation string."""
        if isinstance(statement, CreateAccessPath):
            self._access.create_access_path(
                statement.name, statement.atom_type, statement.attrs,
                method=statement.method,
            )
            return (f"access path {statement.name} on {statement.atom_type}"
                    f"({', '.join(statement.attrs)}) using {statement.method}")
        if isinstance(statement, CreateSortOrder):
            self._access.create_sort_order(
                statement.name, statement.atom_type, statement.attrs
            )
            return (f"sort order {statement.name} on {statement.atom_type}"
                    f"({', '.join(statement.attrs)})")
        if isinstance(statement, CreatePartition):
            self._access.create_partition(
                statement.name, statement.atom_type, statement.attrs
            )
            return (f"partition {statement.name} on {statement.atom_type}"
                    f"({', '.join(statement.attrs)})")
        if isinstance(statement, CreateAtomCluster):
            structure = self._validator.resolve_structure(statement.structure)
            self._access.create_cluster(statement.name, structure)
            return f"atom cluster {statement.name} from {structure!r}"
        if isinstance(statement, DropStructure):
            self._access.drop_structure(statement.name)
            return f"dropped {statement.name}"
        raise ParseError(f"unsupported LDL statement {statement!r}")

    def execute_script(self, text: str) -> list[str]:
        """Parse and execute a ';'-separated LDL script."""
        return [self.execute(stmt) for stmt in parse_ldl_script(text)]
