"""Parser for LDL statements.

Grammar (sharing the MQL lexer and FROM-structure syntax)::

    ldl_statement := CREATE ACCESS PATH name ON type '(' attrs ')'
                       [USING (BTREE | GRID)]
                   | CREATE SORT ORDER name ON type '(' attrs ')'
                   | CREATE PARTITION name ON type '(' attrs ')'
                   | CREATE ATOM_CLUSTER name FROM structure
                   | DROP (ACCESS PATH | SORT ORDER | PARTITION |
                           ATOM_CLUSTER) name

The exact concrete syntax of PRIMA's LDL is not given in the paper; this
grammar realises precisely the four mechanisms section 2.3 enumerates
(access methods, partitioning, sort orders, physical clusters).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError
from repro.mql.ast import FromNode
from repro.mql.parser import Parser


class LdlStatement:
    """Base class of LDL statements."""


@dataclass
class CreateAccessPath(LdlStatement):
    name: str
    atom_type: str
    attrs: list[str]
    method: str = "btree"


@dataclass
class CreateSortOrder(LdlStatement):
    name: str
    atom_type: str
    attrs: list[str]


@dataclass
class CreatePartition(LdlStatement):
    name: str
    atom_type: str
    attrs: list[str]


@dataclass
class CreateAtomCluster(LdlStatement):
    name: str
    structure: FromNode


@dataclass
class DropStructure(LdlStatement):
    name: str


class LdlParser(Parser):
    """Reuses the MQL token stream and structure grammar."""

    def parse_ldl_statement(self) -> LdlStatement:
        statement = self._ldl_statement()
        if self._peek().is_op(";"):
            self._advance()
        if self._peek().kind != "EOF":
            raise self._error("unexpected trailing input")
        return statement

    def parse_ldl_script(self) -> list[LdlStatement]:
        statements: list[LdlStatement] = []
        while self._peek().kind != "EOF":
            statements.append(self._ldl_statement())
            while self._peek().is_op(";"):
                self._advance()
        return statements

    def _ldl_statement(self) -> LdlStatement:
        if self._peek().is_keyword("CREATE"):
            return self._ldl_create()
        if self._peek().is_keyword("DROP"):
            return self._ldl_drop()
        raise self._error("expected CREATE or DROP")

    def _ldl_create(self) -> LdlStatement:
        self._expect_keyword("CREATE")
        token = self._peek()
        if token.is_keyword("ACCESS"):
            self._advance()
            self._expect_keyword("PATH")
            name = self._expect_ident()
            self._expect_keyword("ON")
            atom_type = self._expect_ident()
            attrs = self._attr_list()
            method = "btree"
            if self._peek().is_keyword("USING"):
                self._advance()
                word = self._expect_keyword("BTREE", "GRID")
                method = word.value.lower()
            return CreateAccessPath(name, atom_type, attrs, method)
        if token.is_keyword("SORT"):
            self._advance()
            self._expect_keyword("ORDER")
            name = self._expect_ident()
            self._expect_keyword("ON")
            atom_type = self._expect_ident()
            return CreateSortOrder(name, atom_type, self._attr_list())
        if token.is_keyword("PARTITION"):
            self._advance()
            name = self._expect_ident()
            self._expect_keyword("ON")
            atom_type = self._expect_ident()
            return CreatePartition(name, atom_type, self._attr_list())
        if token.is_keyword("ATOM_CLUSTER"):
            self._advance()
            name = self._expect_ident()
            self._expect_keyword("FROM")
            return CreateAtomCluster(name, self._structure())
        raise self._error(
            "expected ACCESS PATH, SORT ORDER, PARTITION or ATOM_CLUSTER"
        )

    def _ldl_drop(self) -> DropStructure:
        self._expect_keyword("DROP")
        while self._peek().is_keyword("ACCESS", "PATH", "SORT", "ORDER",
                                      "PARTITION", "ATOM_CLUSTER"):
            self._advance()
        return DropStructure(self._expect_ident())

    def _attr_list(self) -> list[str]:
        self._expect_op("(")
        attrs = [self._expect_ident()]
        while self._peek().is_op(","):
            self._advance()
            attrs.append(self._expect_ident())
        self._expect_op(")")
        return attrs


def parse_ldl(text: str) -> LdlStatement:
    """Parse one LDL statement."""
    return LdlParser(text).parse_ldl_statement()


def parse_ldl_script(text: str) -> list[LdlStatement]:
    """Parse a ';'-separated LDL script."""
    return LdlParser(text).parse_ldl_script()
