"""LDL: the load definition language (paper, 2.3).

The database administrator uses LDL to provide 'hints' to the access
system, which creates appropriate storage structures, tailored access
paths, and special tuning mechanisms — all transparent at the MAD
interface.
"""

from repro.ldl.executor import LdlExecutor
from repro.ldl.parser import (
    CreateAccessPath,
    CreateAtomCluster,
    CreatePartition,
    CreateSortOrder,
    DropStructure,
    LdlStatement,
    parse_ldl,
    parse_ldl_script,
)

__all__ = [
    "CreateAccessPath",
    "CreateAtomCluster",
    "CreatePartition",
    "CreateSortOrder",
    "DropStructure",
    "LdlExecutor",
    "LdlStatement",
    "parse_ldl",
    "parse_ldl_script",
]
