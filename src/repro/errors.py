"""Exception hierarchy for the PRIMA reproduction.

Every layer raises subclasses of :class:`PrimaError`.  The hierarchy mirrors
the three-layer architecture of the kernel (Fig. 3.1 of the paper) plus the
language front end, so callers can catch at the granularity they care about.
"""

from __future__ import annotations


class PrimaError(Exception):
    """Base class for all errors raised by the PRIMA reproduction."""


# --------------------------------------------------------------------------
# Storage system (segments, pages, page sequences, buffer)
# --------------------------------------------------------------------------

class StorageError(PrimaError):
    """Base class for storage-system failures."""


class PageSizeError(StorageError):
    """An unsupported page/block size was requested.

    The storage system supports exactly five page sizes (1/2, 1, 2, 4 and
    8 KByte) because the underlying file manager supports exactly these
    block sizes (paper, section 3.3).
    """


class PageOverflowError(StorageError):
    """An item does not fit into the free space of a page."""


class BufferFullError(StorageError):
    """The buffer cannot make room because too many pages are fixed."""


class PageNotFoundError(StorageError):
    """A referenced page does not exist in its segment."""


class SegmentError(StorageError):
    """Segment-level failure (unknown segment, duplicate name, ...)."""


# --------------------------------------------------------------------------
# Access system (records, addressing, atoms, tuning structures, scans)
# --------------------------------------------------------------------------

class AccessError(PrimaError):
    """Base class for access-system failures."""


class RecordNotFoundError(AccessError):
    """A physical record id does not resolve to a stored record."""


class AtomNotFoundError(AccessError):
    """A logical address (surrogate) does not resolve to an atom."""


class IntegrityError(AccessError):
    """A system-enforced structural-integrity rule would be violated.

    Raised e.g. for dangling REFERENCE values, cardinality violations on
    SET attributes, or duplicate key values.
    """


class CardinalityError(IntegrityError):
    """A SET attribute left its declared (min, max) cardinality bounds."""


class DuplicateKeyError(IntegrityError):
    """A KEYS_ARE constraint would be violated by an insert or modify."""


class ScanStateError(AccessError):
    """A scan was used in an illegal state (exhausted, closed, ...)."""


class StructureExistsError(AccessError):
    """A tuning structure (access path, sort order, ...) already exists."""


class StructureNotFoundError(AccessError):
    """A referenced tuning structure does not exist."""


# --------------------------------------------------------------------------
# MAD model / catalog
# --------------------------------------------------------------------------

class SchemaError(PrimaError):
    """Base class for schema / catalog violations."""


class UnknownTypeError(SchemaError):
    """An atom type, molecule type, or attribute does not exist."""


class TypeMismatchError(SchemaError):
    """A value does not conform to its declared attribute type."""


# --------------------------------------------------------------------------
# Language front ends (MQL and LDL)
# --------------------------------------------------------------------------

class LanguageError(PrimaError):
    """Base class for MQL/LDL front-end errors."""


class LexerError(LanguageError):
    """Invalid token in an MQL or LDL source text."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(LanguageError):
    """Syntactically invalid MQL or LDL statement."""


class ValidationError(LanguageError):
    """Semantically invalid statement (unknown names, bad structure, ...)."""


# --------------------------------------------------------------------------
# Data system (planning and execution)
# --------------------------------------------------------------------------

class DataSystemError(PrimaError):
    """Base class for planner/executor failures."""


class PlanningError(DataSystemError):
    """The planner could not produce a processing plan."""


class ExecutionError(DataSystemError):
    """A processing plan failed during evaluation."""


class CursorStateError(DataSystemError):
    """A result-set cursor was used in an illegal state.

    Raised e.g. when ``reopen()`` is called on a result set whose
    pipeline was explicitly closed before it was fully fetched — the
    truncated fetch cache must not be presented as the complete set.
    """


# --------------------------------------------------------------------------
# Transactions
# --------------------------------------------------------------------------

class TransactionError(PrimaError):
    """Base class for transaction-management failures."""


class TransactionStateError(TransactionError):
    """Operation illegal in the transaction's current state."""


class LockConflictError(TransactionError):
    """A lock request conflicts with a lock held by another transaction."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (explicitly or by conflict)."""


# --------------------------------------------------------------------------
# Parallel processing and coupling
# --------------------------------------------------------------------------

class DecompositionError(PrimaError):
    """A user operation could not be decomposed into units of work."""


class CouplingError(PrimaError):
    """Workstation-host coupling failure (bad checkout/checkin state)."""


# --------------------------------------------------------------------------
# Serving layer (sessions and remote cursors)
# --------------------------------------------------------------------------

class SessionError(PrimaError):
    """Base class for serving-layer (session/remote cursor) failures."""


class SessionLimitError(SessionError):
    """Admission control rejected a session: the server is at its
    ``max_sessions`` capacity (and the ``reject`` policy is in force, or
    a ``queue`` wait timed out)."""


class SubscriptionLimitError(SessionLimitError):
    """A session hit its live-query admission budget: it already holds
    ``max_subscriptions`` registered subscriptions."""


class SessionStateError(SessionError):
    """A session or remote cursor was used in an illegal state
    (closed session, unknown cursor id, double close, ...)."""


class SessionExpiredError(SessionStateError):
    """A session, cursor, or statement handle was reclaimed by the
    server's resource hygiene before this use: the session lease ran
    out, or an idle-cursor / idle-statement timeout returned the
    pipeline resources.  The client must reconnect (or re-open)."""


class ProtocolError(SessionError):
    """A malformed or out-of-order message on the serving wire
    (undecodable frame, oversized length prefix, a request before
    HELLO, ...)."""


class ServeError(SessionError):
    """Multiple serve-loop jobs failed concurrently.

    Aggregates every failure (in deterministic job order) instead of
    dropping all but the first; ``failures`` maps job index to the
    exception raised.  A single failing job re-raises its exception
    directly, so the common case keeps its type.
    """

    def __init__(self, failures: list[tuple[int, BaseException]]) -> None:
        summary = "; ".join(
            f"job {index}: {type(exc).__name__}: {exc}"
            for index, exc in failures
        )
        super().__init__(
            f"{len(failures)} serve-loop jobs failed ({summary})"
        )
        #: ``(job_index, exception)`` pairs, ordered by job index.
        self.failures = list(failures)
