"""Nested transactions and hierarchical locking (paper, section 4)."""

from repro.txn.locks import LockManager
from repro.txn.nested import (
    ABORTED,
    ACTIVE,
    COMMITTED,
    Transaction,
    TransactionManager,
    UndoRecord,
)

__all__ = [
    "ABORTED",
    "ACTIVE",
    "COMMITTED",
    "LockManager",
    "Transaction",
    "TransactionManager",
    "UndoRecord",
]
