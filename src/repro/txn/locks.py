"""Hierarchical locks with Moss's nested-transaction rules [Mo81].

A (sub)transaction may acquire a lock if every conflicting holder is one of
its *ancestors* (which are suspended while the child runs).  On commit, a
subtransaction's locks are **inherited upward** by its parent (retained);
on abort they are released.  Lock modes are classic S/X.

The lock manager is non-blocking: a conflicting request raises
:class:`~repro.errors.LockConflictError` immediately — the single-user
kernel never waits, and the semantic-parallelism scheduler serialises
conflicting units of work before they run.

The lock *table* itself is thread-safe: the serving layer runs one
transaction per client session, and concurrent session threads acquire
and release locks against this one table.  A table-level mutex makes
each grant/release/inherit atomic; conflicts between sessions still
surface as :class:`~repro.errors.LockConflictError` (the non-blocking
contract is unchanged — only the bookkeeping is serialised).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Hashable

from repro.errors import LockConflictError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.txn.nested import Transaction

#: Lock mode compatibility: S/S is the only compatible pair.
_COMPATIBLE = {("S", "S"): True, ("S", "X"): False,
               ("X", "S"): False, ("X", "X"): False}


class LockManager:
    """Lock table over arbitrary hashable resources (surrogates, types)."""

    def __init__(self) -> None:
        #: resource -> {transaction: mode}
        self._table: dict[Hashable, dict["Transaction", str]] = {}
        #: Serialises table mutations across concurrent session threads.
        self._mutex = threading.Lock()
        #: Cumulative count of *new* grants per mode (re-grants of a lock
        #: already held do not count).  Snapshot reads are expected to keep
        #: the ``"S"`` counter flat — the b6 benchmark gates on it.
        self.grants: dict[str, int] = {"S": 0, "X": 0}

    # -- acquisition -------------------------------------------------------------

    def acquire(self, txn: "Transaction", resource: Hashable,
                mode: str) -> None:
        """Grant ``mode`` on ``resource`` to ``txn`` or raise on conflict."""
        if mode not in ("S", "X"):
            raise ValueError(f"unknown lock mode {mode!r}")
        with self._mutex:
            holders = self._table.setdefault(resource, {})
            current = holders.get(txn)
            if current == "X" or current == mode:
                return   # already held (same or stronger)
            ancestors = set(txn.ancestors())
            for holder, held_mode in holders.items():
                if holder is txn or holder in ancestors:
                    continue   # own/ancestor locks never conflict (Moss rule)
                if not _COMPATIBLE[(held_mode, mode)] or \
                        not _COMPATIBLE[(mode, held_mode)]:
                    raise LockConflictError(
                        f"{txn.name} cannot lock {resource!r} in {mode}: "
                        f"held in {held_mode} by {holder.name}"
                    )
            holders[txn] = mode
            self.grants[mode] += 1

    # -- release / inheritance ----------------------------------------------------------

    def release_all(self, txn: "Transaction") -> int:
        """Drop every lock of an aborting transaction."""
        released = 0
        with self._mutex:
            for resource in list(self._table):
                if txn in self._table[resource]:
                    del self._table[resource][txn]
                    released += 1
                    if not self._table[resource]:
                        del self._table[resource]
        return released

    def inherit(self, child: "Transaction", parent: "Transaction") -> int:
        """Move a committing child's locks to its parent (upward
        inheritance); the parent keeps the stronger mode on overlap."""
        moved = 0
        with self._mutex:
            for resource in list(self._table):
                holders = self._table[resource]
                child_mode = holders.pop(child, None)
                if child_mode is None:
                    continue
                parent_mode = holders.get(parent)
                if parent_mode is None or (parent_mode == "S" and
                                           child_mode == "X"):
                    holders[parent] = child_mode
                moved += 1
        return moved

    # -- inspection ----------------------------------------------------------------------

    def holders(self, resource: Hashable) -> dict["Transaction", str]:
        with self._mutex:
            return dict(self._table.get(resource, {}))

    def locks_of(self, txn: "Transaction") -> dict[Hashable, str]:
        with self._mutex:
            return {
                resource: holders[txn]
                for resource, holders in self._table.items()
                if txn in holders
            }
