"""Nested transactions (paper, section 4; [Mo81]).

PRIMA refines the concept of nested transactions as a generic mechanism for
all its proposed uses: fine-grained intra-transaction parallelism and
*selective in-transaction recovery* in various failure events.  The
implementation provides:

* a transaction tree — any transaction may begin subtransactions; the
  parent is suspended while a child runs;
* per-transaction undo logs — aborting a subtransaction rolls back exactly
  its own effects (selective recovery), leaving the parent intact;
* upward inheritance — on commit a child's undo records and locks move to
  the parent, so aborting the parent later still undoes everything;
* hierarchical S/X locks following Moss's rules (see
  :mod:`repro.txn.locks`).

Atom operations issued through a transaction are applied to the access
system immediately (no-force, steal is irrelevant for the in-memory buffer
— the undo log carries all recovery information).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterator

from repro.access.system import AccessSystem
from repro.errors import TransactionStateError
from repro.mad.types import Surrogate
from repro.txn.locks import LockManager

#: Transaction states.
ACTIVE = "active"
COMMITTED = "committed"
ABORTED = "aborted"


@dataclass
class UndoRecord:
    """One logged operation with the data needed to reverse it."""

    op: str                      # 'insert' | 'modify' | 'delete'
    surrogate: Surrogate
    before: dict[str, Any] | None     # state before (modify/delete)


class Transaction:
    """One node of the transaction tree."""

    _counter = 0
    #: Guards the id counter: the serving layer begins one top-level
    #: transaction per session, possibly from concurrent threads.
    _counter_lock = threading.Lock()

    def __init__(self, manager: "TransactionManager",
                 parent: "Transaction | None") -> None:
        with Transaction._counter_lock:
            Transaction._counter += 1
            number = Transaction._counter
        self.name = f"T{number}"
        self._manager = manager
        self.parent = parent
        self.state = ACTIVE
        self.children: list[Transaction] = []
        self._active_child: Transaction | None = None
        self._undo: list[UndoRecord] = []

    # -- tree navigation ------------------------------------------------------------

    def ancestors(self) -> Iterator["Transaction"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    @property
    def depth(self) -> int:
        return sum(1 for _ in self.ancestors())

    def _require_runnable(self) -> None:
        if self.state != ACTIVE:
            raise TransactionStateError(f"{self.name} is {self.state}")
        if self._active_child is not None:
            raise TransactionStateError(
                f"{self.name} is suspended while child "
                f"{self._active_child.name} runs"
            )

    # -- subtransactions ---------------------------------------------------------------

    def begin_nested(self) -> "Transaction":
        """Start a subtransaction; this transaction suspends until the
        child commits or aborts."""
        self._require_runnable()
        child = Transaction(self._manager, self)
        self.children.append(child)
        self._active_child = child
        return child

    # -- atom operations (logged) ---------------------------------------------------------

    def insert(self, type_name: str,
               values: dict[str, Any] | None = None) -> Surrogate:
        """Insert an atom under this transaction (X lock, undo logged)."""
        self._require_runnable()
        surrogate = self._access.insert(type_name, values)
        self._manager.locks.acquire(self, surrogate, "X")
        self._undo.append(UndoRecord("insert", surrogate, None))
        return surrogate

    def get(self, surrogate: Surrogate,
            attrs: list[str] | None = None) -> dict[str, Any]:
        """Read an atom under this transaction (S lock)."""
        self._require_runnable()
        self._manager.locks.acquire(self, surrogate, "S")
        return self._access.get(surrogate, attrs)

    def modify(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        """Modify an atom under this transaction (X lock, undo logged).

        Back-reference side effects on partner atoms are rolled back by
        restoring this atom's reference attributes — symmetry maintenance
        re-adjusts the partners during undo exactly as it did during do.
        """
        self._require_runnable()
        self._manager.locks.acquire(self, surrogate, "X")
        before = self._access.get(surrogate)
        self._access.modify(surrogate, values)
        identifier = self._access.schema.atom_type(surrogate.atom_type) \
            .identifier_attr
        before.pop(identifier, None)
        self._undo.append(UndoRecord("modify", surrogate, before))

    def delete(self, surrogate: Surrogate) -> None:
        """Delete an atom under this transaction (X lock, undo logged)."""
        self._require_runnable()
        self._manager.locks.acquire(self, surrogate, "X")
        before = self._access.get(surrogate)
        identifier = self._access.schema.atom_type(surrogate.atom_type) \
            .identifier_attr
        before.pop(identifier, None)
        self._access.delete(surrogate)
        self._undo.append(UndoRecord("delete", surrogate, before))

    @property
    def _access(self) -> AccessSystem:
        return self._manager.access

    # -- commit / abort -------------------------------------------------------------------------

    def commit(self) -> None:
        """Commit: effects become the parent's (or durable at the top)."""
        self._require_runnable()
        self.state = COMMITTED
        if self.parent is not None:
            # Upward inheritance of undo information and locks.
            self.parent._undo.extend(self._undo)
            self._manager.locks.inherit(self, self.parent)
            self.parent._active_child = None
        else:
            self._manager.locks.release_all(self)
            self._access.propagate_deferred()
        self._undo = []

    def abort(self) -> None:
        """Abort: selectively undo exactly this transaction's effects
        (including those inherited from committed children)."""
        if self.state != ACTIVE:
            raise TransactionStateError(f"{self.name} is {self.state}")
        if self._active_child is not None:
            self._active_child.abort()
        for record in reversed(self._undo):
            self._apply_undo(record)
        self._undo = []
        self.state = ABORTED
        self._manager.locks.release_all(self)
        if self.parent is not None:
            self.parent._active_child = None

    def _apply_undo(self, record: UndoRecord) -> None:
        atoms = self._access.atoms
        if record.op == "insert":
            if atoms.exists(record.surrogate):
                atoms.delete(record.surrogate)
        elif record.op == "modify":
            assert record.before is not None
            if atoms.exists(record.surrogate):
                atoms.modify(record.surrogate, record.before)
        elif record.op == "delete":
            assert record.before is not None
            atoms.restore_atom(record.surrogate, record.before)

    # -- inspection ---------------------------------------------------------------------------------

    @property
    def undo_length(self) -> int:
        return len(self._undo)

    def __repr__(self) -> str:
        return f"Transaction({self.name}, {self.state}, depth={self.depth})"


class TransactionManager:
    """Factory and shared state (lock table) for transaction trees."""

    def __init__(self, access: AccessSystem) -> None:
        self.access = access
        self.locks = LockManager()

    def begin(self) -> Transaction:
        """Start a new top-level transaction."""
        return Transaction(self, parent=None)
