"""Semantic decomposition of single user operations (paper, section 4).

Engineering applications with their 'sizable' operations on complex objects
incorporate substantial portions of inherent parallelism.  PRIMA defines
*semantic decomposition*: units of work (DUs) decomposed from a single user
operation allow for inherent semantic parallelism when they do not conflict
with each other at the level of decomposition.

For a molecule query, the natural decomposition is **one DU per candidate
molecule**: deriving the root atoms is a (cheap) sequential prologue; the
expensive part — constructing each molecule, evaluating its qualification,
projecting it — is independent per molecule as long as the units' read/
write sets do not overlap in a conflicting way.  Molecules may share atoms
(non-disjoint complex objects), which is harmless for retrieval (read/read)
but serialises DML units.

Each DU records its read and write sets and its *measured cost* (atom
reads performed), which the scheduler uses as service time.

Since the streaming refactor the decomposer rides on the physical
operator layer: the root atoms come from a :class:`~repro.data.operators
.RootScan` operator, the stream is partitioned round-robin, and one
:class:`ConstructionWorker` per partition drives a ``MoleculeConstruct``
operator over its :class:`~repro.data.operators.RootPartition` slice.

**Execution model.**  ``run_all`` offers two carvings:

* ``mode="threads"`` (default) runs one real :class:`threading.Thread`
  per construction worker (capped by ``max_workers``); each completed DU
  is pushed into a bounded queue that the merge/shaping stage drains
  while the workers are still producing.  A per-run construction lock
  serialises the storage engine at molecule granularity — under
  CPython's GIL the threads provide latency overlap, not CPU
  parallelism.
* ``mode="processes"`` forks one worker *process* per partition slice.
  Each child inherits a copy-on-write image of the engine taken at fork
  time — a process-level snapshot, the multiprocessor analogue of the
  epoch snapshots the serving layer pins for its read cursors — and
  constructs its molecules without any lock at all, streaming completed
  units back to the parent over a queue.  This is true CPU parallelism:
  no GIL, no shared mutable engine state.

Either way the merge stage sorts the completed units by DU index, so
the molecule order is deterministic for any partitioning, interleaving,
or execution mode — thread and process runs of the same query produce
byte-identical results.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import queue
import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.data.executor import DataSystem
from repro.data.operators import (
    MoleculeConstruct,
    RootPartition,
    RootScan,
    order_rank,
    sort_stable,
    top_k_stable,
)
from repro.data.plan import QueryPlan
from repro.data.result import ResultSet
from repro.errors import DecompositionError
from repro.mad.molecule import Molecule
from repro.mad.types import Surrogate
from repro.mql.ast import (
    And,
    Comparison,
    EmptyLiteral,
    Expr,
    Literal,
    Not,
    Or,
    Parameter,
    Path,
    RefLookup,
    SelectStatement,
)


# ---------------------------------------------------------------------------
# Gather/shaping machinery, shared with the cluster coordinator
# ---------------------------------------------------------------------------
#
# The merge stage above the construction workers and the cross-shard
# gather of :mod:`repro.shard` are the same operation: take ordered (or
# orderable) item streams whose ORDER BY values are known *before*
# projection, and shape them exactly like the serial pipeline's
# Sort/TopK + OFFSET/LIMIT stack would.

def shape_window(items: list, plan: QueryPlan,
                 value_of: Callable[[Any, str], Any]) -> list:
    """Result shaping above a gathered stream — the declarative twin of
    the pipeline's ``[Sort|TopK] → [Offset] → [Limit]`` stack.

    ``items`` is the full gathered candidate set (already in a
    deterministic base order); ``value_of(item, attr)`` reads the ORDER
    BY attribute values captured before projection.  Returns the shaped
    selection, result order, same item objects.
    """
    if plan.uses_topk:
        return top_k_stable(items, plan.order_by, value_of,
                            plan.limit, plan.offset)
    if plan.order_by and not plan.order_served_by_access:
        items = list(items)
        sort_stable(items, plan.order_by, value_of)
    if plan.offset:
        items = items[plan.offset:]
    if plan.limit is not None:
        items = items[:plan.limit]
    return items


def merge_ordered(streams: list, order_by: list[tuple[str, bool]],
                  value_of: Callable[[Any, str], Any]
                  ) -> Iterator[tuple[Any, int]]:
    """Lazily k-way merge already-ordered item streams.

    Each stream honours the operator pull protocol (``next()`` returns
    the next item or ``None``); every stream must already deliver in the
    ``order_by`` order.  Yields ``(item, stream_index)`` in global
    order; ties resolve to the lower stream index (then arrival order
    within the stream), so the merge is deterministic.  Consuming lazily
    pulls at most one item ahead per stream — the cross-shard gather
    stays as pipelined as its inputs.
    """
    heap: list[tuple[tuple, int, int, Any]] = []
    serial = 0
    for index, stream in enumerate(streams):
        item = stream.next()
        if item is not None:
            heap.append((order_rank(item, order_by, value_of), index,
                         serial, item))
            serial += 1
    heapq.heapify(heap)
    while heap:
        _rank, index, _serial, item = heapq.heappop(heap)
        yield item, index
        refill = streams[index].next()
        if refill is not None:
            heapq.heappush(heap, (order_rank(refill, order_by, value_of),
                                  index, serial, refill))
            serial += 1


def residual_is_root_only(residual: "Expr | None", root_label: str,
                          root_attrs: "set[str]") -> bool:
    """True when a residual qualification reads only root-atom values.

    Such a residual can be evaluated on the root atom alone — before any
    molecule is constructed — which lets the sequential prologue keep
    its window/bound shaping under residual qualification (each
    disqualified root is simply skipped instead of disabling shaping).
    Quantified conditions and component-label paths need the constructed
    molecule and return False.
    """
    if residual is None:
        return True
    if isinstance(residual, (Literal, EmptyLiteral, Parameter, RefLookup)):
        return True
    if isinstance(residual, Path):
        if residual.level is not None:
            return False
        if len(residual.parts) == 1:
            return residual.parts[0] in root_attrs
        return len(residual.parts) == 2 and residual.parts[0] == root_label
    if isinstance(residual, Comparison):
        return residual_is_root_only(residual.left, root_label, root_attrs) \
            and residual_is_root_only(residual.right, root_label, root_attrs)
    if isinstance(residual, (And, Or)):
        return all(residual_is_root_only(part, root_label, root_attrs)
                   for part in residual.parts)
    if isinstance(residual, Not):
        return residual_is_root_only(residual.inner, root_label, root_attrs)
    return False


@dataclass
class UnitOfWork:
    """One decomposed unit (DU): construct and qualify one molecule."""

    index: int
    root: Surrogate
    #: Pre-projection values of the plan's ORDER BY attributes (the final
    #: sort runs after the workers, when projection may have pruned them).
    order_values: dict[str, Any] = field(default_factory=dict)
    #: Atoms this DU reads (filled during execution).
    read_set: set[Surrogate] = field(default_factory=set)
    #: Atoms this DU writes (empty for retrieval).
    write_set: set[Surrogate] = field(default_factory=set)
    #: Service time in cost units (atom reads), measured during execution.
    cost: float = 0.0
    #: The DU's result (a molecule, or None when disqualified).
    result: Molecule | None = None

    def conflicts_with(self, other: "UnitOfWork") -> bool:
        """True when the two units conflict at decomposition level
        (write/write or read/write intersection)."""
        if self.write_set & other.write_set:
            return True
        if self.write_set & other.read_set:
            return True
        if self.read_set & other.write_set:
            return True
        return False


def partition_units(units: list[UnitOfWork],
                    partitions: int) -> list[list[UnitOfWork]]:
    """Round-robin the DU stream into ``partitions`` non-empty slices."""
    if partitions < 1:
        raise DecompositionError("need at least one partition")
    slices = [units[p::partitions] for p in range(partitions)]
    return [part for part in slices if part]


class ConstructionWorker:
    """One molecule-construction worker over one partition of the roots.

    The worker owns a ``MoleculeConstruct`` operator fed by the
    ``RootPartition`` slice assigned to it; pulling a DU's molecule
    through the operator measures the unit's cost (atom reads), fills its
    read set, evaluates the residual qualification and projects — exactly
    what the serial pipeline does above the root scan.

    When run on a thread, ``lock`` serialises the storage engine at DU
    granularity (cost measurement stays exact because the whole counted
    region is inside the lock) and every completed unit is pushed into
    ``sink`` for the merge stage to drain.
    """

    def __init__(self, data: DataSystem, plan: QueryPlan,
                 units: list[UnitOfWork], index: int = 0,
                 of: int = 1, lock: threading.Lock | None = None,
                 sink: "queue.Queue[UnitOfWork] | None" = None) -> None:
        self._data = data
        self._plan = plan
        self.units = units
        self._lock = lock
        self._sink = sink
        source = RootPartition([unit.root for unit in units],
                               index=index, of=of)
        self.construct = MoleculeConstruct(source, data, plan.structure,
                                           plan.cluster_name)
        self.construct.bind_counters(data.access.counters)

    def run(self) -> None:
        for unit in self.units:
            self._run_unit(unit)
            if self._sink is not None:
                self._sink.put(unit)

    def _run_unit(self, unit: UnitOfWork) -> None:
        data = self._data
        plan = self._plan
        counters = data.access.counters
        guard = self._lock if self._lock is not None else nullcontext()
        with guard:
            before = counters.get("atoms_read")
            molecule = self.construct.next()
            assert molecule is not None  # one molecule per root in the slice
            for _label, atom in molecule.atoms():
                for value in atom.values():
                    if isinstance(value, Surrogate):
                        unit.read_set.add(value)
            if plan.residual_where is None or \
                    data.evaluator.matches(plan.residual_where, molecule):
                unit.order_values = {attr: molecule.atom.get(attr)
                                     for attr, _desc in plan.order_by}
                data.apply_projection(molecule, plan.projection,
                                      plan.structure)
                unit.result = molecule
            unit.cost = max(counters.get("atoms_read") - before, 1)


class SemanticDecomposer:
    """Decomposes a molecule query into per-molecule units of work."""

    def __init__(self, data: DataSystem) -> None:
        self._data = data
        #: OS process ids that executed units in the most recent
        #: ``run_all`` — a singleton set for serial/threaded runs, one
        #: pid per forked child for ``mode="processes"``.
        self.worker_pids: set[int] = set()

    def decompose_select(self, mql: str, args: tuple = (),
                         params: dict | None = None
                         ) -> tuple[QueryPlan, list[UnitOfWork]]:
        """Prepare (through the shared plan cache) + bind a SELECT and
        create one (unexecuted) DU per root.

        Repeated statement text skips parse+plan like every other entry
        point; ``args``/``params`` bind ``?`` / ``:name`` placeholders.
        """
        prepared = self._data.prepare(mql)
        if prepared.kind != "select":
            raise DecompositionError(
                "semantic decomposition operates on SELECT statements"
            )
        return self.decompose_plan(prepared.bind(args, params or {}))

    def decompose_plan(self, plan: QueryPlan
                       ) -> tuple[QueryPlan, list[UnitOfWork]]:
        """One (unexecuted) DU per root of an already-bound plan.

        The roots are drawn from the same ``RootScan`` operator the
        serial pipeline uses — the sequential prologue of the paper's
        decomposition.  The prologue applies the same direction + bound
        shaping as the serial pipeline: an ORDER BY fully served by the
        (possibly reverse) root scan with a LIMIT derives only the
        ``limit + offset`` leading roots, and a prefix-served ORDER BY
        pushes the window anchor's prefix key into the scan as the
        dynamic stop bound — no worker is ever spawned for a root that
        cannot reach the result window.
        """
        roots = self._derive_roots(plan)
        units = [UnitOfWork(index=i, root=root)
                 for i, root in enumerate(roots)]
        return plan, units

    def _derive_roots(self, plan: QueryPlan) -> list[Surrogate]:
        """The sequential prologue: root surrogates, window-shaped.

        Shaping requires that no residual qualification can disqualify a
        unit *after* the window was carved (a disqualified unit would
        shrink the delivered window below LIMIT, and a bound anchored on
        a disqualified molecule could prune true result members).  A
        residual that reads only root-atom values is the exception: it
        is evaluated right here on each root, disqualified roots are
        skipped before they count toward the window, and the anchor is
        always a true result candidate — so prefix-served DESC windows
        keep their shaping instead of bailing to the full derive + Sort.
        """
        scan = RootScan(self._data, plan.root_access)
        window = plan.limit + plan.offset if plan.limit is not None else None
        root_filter = None
        if plan.residual_where is not None and window is not None:
            root_type = self._data.schema.atom_type(plan.structure.atom_type)
            if residual_is_root_only(plan.residual_where,
                                     plan.structure.label,
                                     set(root_type.attributes)):
                evaluator = self._data.evaluator
                residual = plan.residual_where

                def root_filter(atom: dict) -> bool:
                    return evaluator.matches(
                        residual, Molecule(plan.structure, atom))
            else:
                window = None
        if window is None or not (plan.order_served_by_access
                                  or plan.order_prefix_served):
            return list(scan)
        roots: list[Surrogate] = []
        prefix_attrs = [attr for attr, _desc in
                        plan.order_by[:plan.order_prefix_served]]
        for root in scan:
            anchor = None
            if root_filter is not None:
                anchor = self._data.access.atoms.get(root)
                if not root_filter(anchor):
                    continue   # never reaches the window — no DU for it
            roots.append(root)
            if plan.order_served_by_access:
                if len(roots) >= window:
                    break   # the scan order IS the result order
            elif len(roots) == window:
                # The k-th retained candidate anchors the prefix bound:
                # any later root with a strictly greater (in scan
                # direction) prefix key is beaten by all k candidates
                # already derived, so the walk can stop there.
                if anchor is None:
                    anchor = self._data.access.atoms.get(root)
                scan.bound(tuple(anchor.get(attr)
                                 for attr in prefix_attrs))
        return roots

    def execute_unit(self, plan: QueryPlan, unit: UnitOfWork) -> None:
        """Run one DU: construct, qualify, project; measure its cost.

        Cost is the number of atom reads the unit performed — the dominant
        quantity of molecule construction and a deterministic, hardware-
        independent service time for the scheduler.
        """
        ConstructionWorker(self._data, plan, [unit]).run()

    def run_all(self, plan: QueryPlan, units: list[UnitOfWork],
                partitions: int = 1,
                max_workers: int | None = None,
                engine_lock=None, mode: str = "threads") -> ResultSet:
        """Execute every DU and assemble the molecule set in DU order.

        The DU stream is partitioned round-robin; one construction worker
        per partition drives its slice through the operator layer.  With
        ``mode="threads"`` each worker runs on its own
        :class:`threading.Thread` (capped by ``max_workers``;
        ``max_workers=1`` forces the serial loop) and the completed units
        flow through a bounded queue into the merge/shaping stage.  With
        ``mode="processes"`` the workers fork into child processes, each
        constructing against its copy-on-write engine image and streaming
        completed units back to the parent (falls back to threads where
        the ``fork`` start method is unavailable).  Either way the merge
        sorts by DU index — the result order is deterministic for any
        partition count, interleaving, or mode.

        ``engine_lock`` substitutes the per-run storage-engine lock with
        a caller-owned one: the serving layer passes the *reader side* of
        its engine read/write lock here, so a parallel query's
        construction (and the fork points of a process run) never overlap
        a peer session's writer (see
        :meth:`repro.serve.Session.parallel_query`).
        """
        if max_workers is not None and max_workers < 1:
            raise DecompositionError("need at least one worker thread")
        if mode not in ("threads", "processes"):
            raise DecompositionError(
                f"unknown parallel mode {mode!r}; "
                "expected 'threads' or 'processes'"
            )
        parts = partition_units(units, partitions)
        fanout = len(parts) > 1 and (max_workers is None
                                     or max_workers > 1)
        self.worker_pids = {os.getpid()}
        if not fanout:
            workers = [
                ConstructionWorker(self._data, plan, part, index=i,
                                   of=len(parts), lock=engine_lock)
                for i, part in enumerate(parts)
            ]
            for worker in workers:
                worker.run()
        elif mode == "processes":
            self._run_processes(plan, parts, max_workers,
                                engine_lock=engine_lock)
        else:
            self._run_threaded(plan, parts, max_workers,
                               engine_lock=engine_lock)
        qualified = [u for u in sorted(units, key=lambda u: u.index)
                     if u.result is not None]
        # Result shaping mirrors the serial pipeline above the workers:
        # bounded-heap top-k under ORDER BY + LIMIT, otherwise the
        # explicit final sort followed by the OFFSET/LIMIT window.
        value_of = lambda unit, attr: unit.order_values.get(attr)  # noqa: E731
        selected = shape_window(qualified, plan, value_of)
        return ResultSet([u.result for u in selected],
                         plan_text=plan.explain())

    def _run_threaded(self, plan: QueryPlan,
                      parts: list[list[UnitOfWork]],
                      max_workers: int | None,
                      engine_lock=None) -> None:
        """One thread per construction worker, merge draining the queue.

        The queue is bounded, so workers never run unboundedly ahead of
        the merge stage; a per-run lock (or the caller's ``engine_lock``)
        serialises the single-user storage engine at DU granularity (see
        the module docstring).
        """
        sink: queue.Queue = queue.Queue(maxsize=max(2, 2 * len(parts)))
        lock = engine_lock if engine_lock is not None else threading.Lock()
        workers = [
            ConstructionWorker(self._data, plan, part, index=i,
                               of=len(parts), lock=lock, sink=sink)
            for i, part in enumerate(parts)
        ]
        thread_count = len(workers) if max_workers is None \
            else min(max_workers, len(workers))
        failures: list[BaseException] = []
        done = object()

        def drive(assigned: list[ConstructionWorker]) -> None:
            try:
                for worker in assigned:
                    worker.run()
            except BaseException as exc:  # noqa: BLE001 - reraised below
                failures.append(exc)
            finally:
                sink.put(done)

        threads = [
            threading.Thread(target=drive,
                             args=(workers[t::thread_count],),
                             name=f"construction-worker-{t}", daemon=True)
            for t in range(thread_count)
        ]
        for thread in threads:
            thread.start()
        finished = 0
        drained = 0
        while finished < len(threads):
            item = sink.get()
            if item is done:
                finished += 1
            else:
                drained += 1
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        assert drained == sum(len(w.units) for w in workers)

    def _run_processes(self, plan: QueryPlan,
                       parts: list[list[UnitOfWork]],
                       max_workers: int | None,
                       engine_lock=None) -> None:
        """One forked process per worker pool slot, results over a queue.

        The ``fork`` start method is required: a forked child inherits
        the parent's engine image copy-on-write, so the workers (already
        holding live ``DataSystem`` references) run unchanged and
        unpickled in the child.  The fork itself happens under
        ``engine_lock`` — with the serving layer's reader side held, no
        peer writer can be mid-mutation at fork time, so every child's
        image is a consistent snapshot.  Children send each completed
        unit's payload (index, molecule, order values, read set, cost)
        back over the queue; the parent fills its own units by index,
        keeping the merge stage identical to the threaded path.
        """
        if "fork" not in multiprocessing.get_all_start_methods():
            self._run_threaded(plan, parts, max_workers,
                               engine_lock=engine_lock)
            return
        ctx = multiprocessing.get_context("fork")
        sink = ctx.Queue()
        workers = [
            ConstructionWorker(self._data, plan, part, index=i,
                               of=len(parts))
            for i, part in enumerate(parts)
        ]
        proc_count = len(workers) if max_workers is None \
            else min(max_workers, len(workers))

        def drive(assigned: list[ConstructionWorker]) -> None:
            pid = os.getpid()
            try:
                for worker in assigned:
                    for unit in worker.units:
                        worker._run_unit(unit)  # noqa: SLF001
                        sink.put(("unit", pid, unit.index, unit.result,
                                  unit.order_values, unit.read_set,
                                  unit.cost))
            except BaseException as exc:  # noqa: BLE001 - reported below
                sink.put(("error", pid, repr(exc)))
            else:
                sink.put(("done", pid))

        processes = [
            ctx.Process(target=drive, args=(workers[p::proc_count],),
                        name=f"construction-proc-{p}")
            for p in range(proc_count)
        ]
        guard = engine_lock if engine_lock is not None else nullcontext()
        with guard:   # no writer mid-flight while the children fork
            for process in processes:
                process.start()
        by_index = {unit.index: unit
                    for part in parts for unit in part}
        errors: list[str] = []
        finished = 0
        while finished < len(processes):
            message = sink.get()
            if message[0] == "unit":
                _tag, pid, index, result, order_values, read_set, cost \
                    = message
                unit = by_index[index]
                unit.result = result
                unit.order_values = order_values
                unit.read_set = read_set
                unit.cost = cost
                self.worker_pids.add(pid)
            elif message[0] == "error":
                errors.append(f"worker pid {message[1]}: {message[2]}")
                finished += 1
            else:
                finished += 1
        for process in processes:
            process.join()
        sink.close()
        if errors:
            raise DecompositionError(
                "process-parallel construction failed: " + "; ".join(errors)
            )

    # -- DML decomposition ----------------------------------------------------------

    def decompose_modify(self, mql: str, args: tuple = (),
                         params: dict | None = None
                         ) -> tuple[Any, list[UnitOfWork]]:
        """Decompose a MODIFY statement into one DU per qualifying
        molecule.

        Each DU's write set contains the atoms (with the target label) it
        will modify; because molecules may overlap (n:m associations,
        shared components), write sets of different DUs can intersect —
        those units conflict at decomposition level and the scheduler
        serialises them, preserving single-user semantics.
        ``args``/``params`` bind placeholders in the assignments and the
        qualification.
        """
        from repro.mql.ast import ModifyStatement, Projection
        prepared = self._data.prepare(mql)
        statement = prepared.bound_statement(args, params or {})
        if not isinstance(statement, ModifyStatement):
            raise DecompositionError(
                "decompose_modify operates on MODIFY statements"
            )
        self._data._ensure_symmetry()  # noqa: SLF001
        query = SelectStatement(Projection(select_all=True),
                                statement.from_clause, statement.where)
        plan = self._data.plan_select(query)
        node = plan.structure.find(statement.label)
        if node is None:
            raise DecompositionError(
                f"MODIFY names unknown label {statement.label!r}"
            )
        roots = list(RootScan(self._data, plan.root_access))
        units = [UnitOfWork(index=i, root=root)
                 for i, root in enumerate(roots)]
        return (statement, plan), units

    def execute_modify_unit(self, context, unit: UnitOfWork) -> None:
        """Run one MODIFY DU: qualify, locate target atoms, apply."""
        statement, plan = context
        data = self._data
        counters = data.access.counters
        before = counters.get("atoms_read")
        molecule = data.construct_molecule(plan.structure, unit.root, None)
        for _label, atom in molecule.atoms():
            for value in atom.values():
                if isinstance(value, Surrogate):
                    unit.read_set.add(value)
        qualified = plan.residual_where is None or \
            data.evaluator.matches(plan.residual_where, molecule)
        if qualified:
            node = plan.structure.find(statement.label)
            assert node is not None
            id_attr = data.schema.atom_type(node.atom_type).identifier_attr
            changes = {
                attr: data._resolve_value(value)  # noqa: SLF001
                for attr, value in statement.assignments
            }
            targets: list[Surrogate] = []
            for label, atom in molecule.atoms():
                if label == statement.label:
                    surrogate = atom[id_attr]
                    if surrogate not in unit.write_set:
                        unit.write_set.add(surrogate)
                        targets.append(surrogate)
            for surrogate in targets:
                data.access.modify(surrogate, dict(changes))
        unit.cost = max(counters.get("atoms_read") - before, 1)
