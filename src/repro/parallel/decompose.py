"""Semantic decomposition of single user operations (paper, section 4).

Engineering applications with their 'sizable' operations on complex objects
incorporate substantial portions of inherent parallelism.  PRIMA defines
*semantic decomposition*: units of work (DUs) decomposed from a single user
operation allow for inherent semantic parallelism when they do not conflict
with each other at the level of decomposition.

For a molecule query, the natural decomposition is **one DU per candidate
molecule**: deriving the root atoms is a (cheap) sequential prologue; the
expensive part — constructing each molecule, evaluating its qualification,
projecting it — is independent per molecule as long as the units' read/
write sets do not overlap in a conflicting way.  Molecules may share atoms
(non-disjoint complex objects), which is harmless for retrieval (read/read)
but serialises DML units.

Each DU records its read and write sets and its *measured cost* (atom
reads performed), which the scheduler uses as service time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.data.executor import DataSystem
from repro.data.plan import QueryPlan
from repro.data.result import ResultSet
from repro.errors import DecompositionError
from repro.mad.molecule import Molecule
from repro.mad.types import Surrogate
from repro.mql.ast import SelectStatement
from repro.mql.parser import parse


@dataclass
class UnitOfWork:
    """One decomposed unit (DU): construct and qualify one molecule."""

    index: int
    root: Surrogate
    #: Atoms this DU reads (filled during execution).
    read_set: set[Surrogate] = field(default_factory=set)
    #: Atoms this DU writes (empty for retrieval).
    write_set: set[Surrogate] = field(default_factory=set)
    #: Service time in cost units (atom reads), measured during execution.
    cost: float = 0.0
    #: The DU's result (a molecule, or None when disqualified).
    result: Molecule | None = None

    def conflicts_with(self, other: "UnitOfWork") -> bool:
        """True when the two units conflict at decomposition level
        (write/write or read/write intersection)."""
        if self.write_set & other.write_set:
            return True
        if self.write_set & other.read_set:
            return True
        if self.read_set & other.write_set:
            return True
        return False


class SemanticDecomposer:
    """Decomposes a molecule query into per-molecule units of work."""

    def __init__(self, data: DataSystem) -> None:
        self._data = data

    def decompose_select(self, mql: str) -> tuple[QueryPlan, list[UnitOfWork]]:
        """Parse + plan a SELECT and create one (unexecuted) DU per root."""
        statement = parse(mql)
        if not isinstance(statement, SelectStatement):
            raise DecompositionError(
                "semantic decomposition operates on SELECT statements"
            )
        self._data._ensure_symmetry()  # noqa: SLF001
        plan = self._data.plan_select(statement)
        roots = list(self._data._root_atoms(plan.root_access))  # noqa: SLF001
        units = [UnitOfWork(index=i, root=root)
                 for i, root in enumerate(roots)]
        return plan, units

    def execute_unit(self, plan: QueryPlan, unit: UnitOfWork) -> None:
        """Run one DU: construct, qualify, project; measure its cost.

        Cost is the number of atom reads the unit performed — the dominant
        quantity of molecule construction and a deterministic, hardware-
        independent service time for the scheduler.
        """
        data = self._data
        counters = data.access.counters
        before = counters.get("atoms_read")
        cluster = None
        if plan.cluster_name is not None:
            structure = data.access.atoms.structure(plan.cluster_name)
            from repro.access.cluster import AtomCluster
            assert isinstance(structure, AtomCluster)
            cluster = structure
        molecule = data.construct_molecule(plan.structure, unit.root, cluster)
        for _label, atom in molecule.atoms():
            for value in atom.values():
                if isinstance(value, Surrogate):
                    unit.read_set.add(value)
        if plan.residual_where is None or \
                data.evaluator.matches(plan.residual_where, molecule):
            data._apply_projection(  # noqa: SLF001
                molecule, plan.projection, plan.structure
            )
            unit.result = molecule
        unit.cost = max(counters.get("atoms_read") - before, 1)

    def run_all(self, plan: QueryPlan,
                units: list[UnitOfWork]) -> ResultSet:
        """Execute every DU (serially — the scheduler replays the costs)
        and assemble the molecule set in DU order."""
        for unit in units:
            self.execute_unit(plan, unit)
        molecules = [u.result for u in units if u.result is not None]
        return ResultSet(molecules, plan_text=plan.explain())

    # -- DML decomposition ----------------------------------------------------------

    def decompose_modify(self, mql: str) -> tuple[Any, list[UnitOfWork]]:
        """Decompose a MODIFY statement into one DU per qualifying
        molecule.

        Each DU's write set contains the atoms (with the target label) it
        will modify; because molecules may overlap (n:m associations,
        shared components), write sets of different DUs can intersect —
        those units conflict at decomposition level and the scheduler
        serialises them, preserving single-user semantics.
        """
        from repro.mql.ast import ModifyStatement, Projection
        statement = parse(mql)
        if not isinstance(statement, ModifyStatement):
            raise DecompositionError(
                "decompose_modify operates on MODIFY statements"
            )
        self._data._ensure_symmetry()  # noqa: SLF001
        query = SelectStatement(Projection(select_all=True),
                                statement.from_clause, statement.where)
        plan = self._data.plan_select(query)
        node = plan.structure.find(statement.label)
        if node is None:
            raise DecompositionError(
                f"MODIFY names unknown label {statement.label!r}"
            )
        roots = list(self._data._root_atoms(plan.root_access))  # noqa: SLF001
        units = [UnitOfWork(index=i, root=root)
                 for i, root in enumerate(roots)]
        return (statement, plan), units

    def execute_modify_unit(self, context, unit: UnitOfWork) -> None:
        """Run one MODIFY DU: qualify, locate target atoms, apply."""
        statement, plan = context
        data = self._data
        counters = data.access.counters
        before = counters.get("atoms_read")
        molecule = data.construct_molecule(plan.structure, unit.root, None)
        for _label, atom in molecule.atoms():
            for value in atom.values():
                if isinstance(value, Surrogate):
                    unit.read_set.add(value)
        qualified = plan.residual_where is None or \
            data.evaluator.matches(plan.residual_where, molecule)
        if qualified:
            node = plan.structure.find(statement.label)
            assert node is not None
            id_attr = data.schema.atom_type(node.atom_type).identifier_attr
            changes = {
                attr: data._resolve_value(value)  # noqa: SLF001
                for attr, value in statement.assignments
            }
            targets: list[Surrogate] = []
            for label, atom in molecule.atoms():
                if label == statement.label:
                    surrogate = atom[id_attr]
                    if surrogate not in unit.write_set:
                        unit.write_set.add(surrogate)
                        targets.append(surrogate)
            for surrogate in targets:
                data.access.modify(surrogate, dict(changes))
        unit.cost = max(counters.get("atoms_read") - before, 1)
