"""Deterministic multi-processor scheduling of units of work.

The paper proposes multi-processor PRIMA architectures in which decomposed
units of work (DUs) are scheduled and executed concurrently by the DBMS.
This module substitutes the planned multi-processor hardware with a
deterministic discrete-event simulation (see DESIGN.md §5): each DU carries
a measured service time; the scheduler assigns ready DUs to the first free
of P simulated processors, honouring conflict edges (conflicting DUs are
serialised in index order, preserving the single-user operation's
semantics).

Outputs are the quantities the parallelism claim is about: serial time,
parallel makespan, speedup, efficiency, and a per-processor trace.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import DecompositionError
from repro.parallel.decompose import UnitOfWork


@dataclass(frozen=True)
class ScheduledUnit:
    """One DU's placement in the simulated schedule."""

    unit_index: int
    processor: int
    start: float
    finish: float


@dataclass
class ScheduleReport:
    """Result of simulating one decomposed operation on P processors."""

    processors: int
    unit_count: int
    serial_time: float
    makespan: float
    schedule: list[ScheduledUnit] = field(default_factory=list)
    conflict_edges: int = 0

    @property
    def speedup(self) -> float:
        return self.serial_time / self.makespan if self.makespan else 1.0

    @property
    def efficiency(self) -> float:
        return self.speedup / self.processors if self.processors else 0.0

    def explain(self) -> str:
        return (f"{self.unit_count} DUs on {self.processors} processors: "
                f"serial {self.serial_time:.0f} -> makespan "
                f"{self.makespan:.0f} cost units, speedup "
                f"{self.speedup:.2f}x, efficiency {self.efficiency:.2f}, "
                f"{self.conflict_edges} conflict edge(s)")


def build_conflict_edges(units: list[UnitOfWork]) -> list[tuple[int, int]]:
    """All pairs (i < j) of units conflicting at decomposition level."""
    edges: list[tuple[int, int]] = []
    for i, first in enumerate(units):
        if not first.write_set:
            # read-only units never conflict with other read-only units;
            # check only against writers.
            for j in range(i + 1, len(units)):
                second = units[j]
                if second.write_set and first.conflicts_with(second):
                    edges.append((i, j))
        else:
            for j in range(i + 1, len(units)):
                if first.conflicts_with(units[j]):
                    edges.append((i, j))
    return edges


def simulate(units: list[UnitOfWork], processors: int) -> ScheduleReport:
    """List-schedule the DUs onto ``processors`` simulated processors.

    Conflicting DUs are ordered by index (the decomposition order), which
    keeps the simulated execution equivalent to the serial one.  Ready
    units are dispatched greedily to the earliest-free processor.
    """
    if processors < 1:
        raise DecompositionError("need at least one processor")
    edges = build_conflict_edges(units)
    blockers: dict[int, set[int]] = {u.index: set() for u in units}
    for i, j in edges:
        blockers[j].add(i)

    finish_time: dict[int, float] = {}
    #: (free_at, processor) min-heap.
    free_at: list[tuple[float, int]] = [(0.0, p) for p in range(processors)]
    heapq.heapify(free_at)
    pending = sorted(units, key=lambda u: u.index)
    scheduled: list[ScheduledUnit] = []
    clock_guard = 0

    while pending:
        clock_guard += 1
        if clock_guard > 10 * len(units) + 100:
            raise DecompositionError("scheduler failed to make progress")
        progressed = False
        remaining: list[UnitOfWork] = []
        for unit in pending:
            ready_at = 0.0
            ready = True
            for blocker in blockers[unit.index]:
                if blocker not in finish_time:
                    ready = False
                    break
                ready_at = max(ready_at, finish_time[blocker])
            if not ready:
                remaining.append(unit)
                continue
            free_time, processor = heapq.heappop(free_at)
            start = max(free_time, ready_at)
            finish = start + unit.cost
            finish_time[unit.index] = finish
            heapq.heappush(free_at, (finish, processor))
            scheduled.append(ScheduledUnit(unit.index, processor, start,
                                           finish))
            progressed = True
        if not progressed and remaining:
            raise DecompositionError("conflict cycle among units of work")
        pending = remaining

    serial_time = sum(unit.cost for unit in units)
    makespan = max((s.finish for s in scheduled), default=0.0)
    return ScheduleReport(
        processors=processors,
        unit_count=len(units),
        serial_time=serial_time,
        makespan=makespan,
        schedule=sorted(scheduled, key=lambda s: (s.start, s.processor)),
        conflict_edges=len(edges),
    )
