"""Convenience entry point: run one MQL SELECT with semantic parallelism.

``parallel_select(db, query, processors)`` decomposes the query into DUs,
partitions the root-scan stream round-robin (one molecule-construction
worker per partition, riding the physical operator layer), executes the
units (measuring per-DU cost), and reports the simulated multi-processor
schedule.

``query`` is either MQL text — prepared through the shared plan cache,
so repeated text skips parse+plan — or an already-prepared
:class:`~repro.data.prepared.PreparedStatement`; ``args``/``params``
bind ``?`` / ``:name`` placeholders for the execution either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.data.prepared import PreparedStatement
from repro.data.result import ResultSet
from repro.db import Prima
from repro.errors import DecompositionError
from repro.parallel.decompose import SemanticDecomposer
from repro.parallel.scheduler import ScheduleReport, simulate


@dataclass
class ParallelQueryResult:
    """Molecules plus the simulated schedule."""

    result: ResultSet
    report: ScheduleReport
    #: OS process ids that constructed molecules — a singleton set for
    #: threaded runs, one pid per forked child for ``mode="processes"``.
    worker_pids: frozenset[int] = frozenset()

    def __repr__(self) -> str:
        return f"ParallelQueryResult({len(self.result)} molecules, " \
               f"{self.report.explain()})"


def parallel_select(db: Prima, query: "str | PreparedStatement",
                    processors: int = 4,
                    partitions: int | None = None,
                    max_workers: int | None = None,
                    engine_lock=None, mode: str = "threads",
                    args: tuple = (),
                    params: dict[str, Any] | None = None
                    ) -> ParallelQueryResult:
    """Execute a molecule query with semantic parallelism on a simulated
    ``processors``-way PRIMA.

    ``query`` is MQL text (prepared through the shared plan cache) or a
    :class:`~repro.data.prepared.PreparedStatement` — a prepared query
    re-executed here performs zero parse/plan work, exactly like the
    serial ``stmt.execute()`` path; ``args``/``params`` bind its
    placeholders.  ``partitions`` controls how the root stream is carved
    across the construction workers; it defaults to one partition per
    processor.  Each worker runs on its own thread, feeding the merge
    stage through a bounded queue; ``max_workers`` caps the number of
    threads (``max_workers=1`` forces the serial loop).
    ``mode="processes"`` forks the workers into child processes instead —
    each child constructs against a copy-on-write image of the engine
    taken at fork time (true CPU parallelism, no GIL); it falls back to
    threads where the ``fork`` start method is unavailable.  The
    molecule order is deterministic in every mode.  ``engine_lock`` lets
    an embedding subsystem (the serving layer) substitute the reader
    side of its engine read/write lock for the per-run one.
    """
    if getattr(db, "is_cluster", False):
        raise DecompositionError(
            "parallel_select targets one engine; a sharded cluster "
            "already scatter-gathers across its shards — execute "
            "through the coordinator instead"
        )
    decomposer = SemanticDecomposer(db.data)
    if isinstance(query, PreparedStatement):
        if query.kind != "select":
            raise DecompositionError(
                "semantic decomposition operates on SELECT statements"
            )
        plan, units = decomposer.decompose_plan(
            query.bind(args, params or {}))
    else:
        plan, units = decomposer.decompose_select(query, args=args,
                                                  params=params)
    result = decomposer.run_all(
        plan, units,
        partitions=max(1, partitions if partitions is not None
                       else processors),
        max_workers=max_workers,
        engine_lock=engine_lock,
        mode=mode,
    )
    report = simulate(units, processors)
    metrics = db.data.obs.metrics
    metrics.gauge("parallel_speedup", round(report.speedup, 4))
    metrics.observe("parallel_units", len(units))
    return ParallelQueryResult(result=result, report=report,
                               worker_pids=frozenset(decomposer.worker_pids))
