"""Convenience entry point: run one MQL SELECT with semantic parallelism.

``parallel_select(db, mql, processors)`` decomposes the query into DUs,
partitions the root-scan stream round-robin (one molecule-construction
worker per partition, riding the physical operator layer), executes the
units (measuring per-DU cost), and reports the simulated multi-processor
schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.result import ResultSet
from repro.db import Prima
from repro.parallel.decompose import SemanticDecomposer
from repro.parallel.scheduler import ScheduleReport, simulate


@dataclass
class ParallelQueryResult:
    """Molecules plus the simulated schedule."""

    result: ResultSet
    report: ScheduleReport

    def __repr__(self) -> str:
        return f"ParallelQueryResult({len(self.result)} molecules, " \
               f"{self.report.explain()})"


def parallel_select(db: Prima, mql: str, processors: int = 4,
                    partitions: int | None = None,
                    max_workers: int | None = None,
                    engine_lock=None) -> ParallelQueryResult:
    """Execute a molecule query with semantic parallelism on a simulated
    ``processors``-way PRIMA.

    ``partitions`` controls how the root stream is carved across the
    construction workers; it defaults to one partition per processor.
    Each worker runs on its own thread, feeding the merge stage through a
    bounded queue; ``max_workers`` caps the number of threads
    (``max_workers=1`` forces the serial loop).  The molecule order is
    deterministic either way.  ``engine_lock`` lets an embedding
    subsystem (the serving layer) substitute its own engine-serialisation
    lock for the per-run one.
    """
    decomposer = SemanticDecomposer(db.data)
    plan, units = decomposer.decompose_select(mql)
    result = decomposer.run_all(
        plan, units,
        partitions=max(1, partitions if partitions is not None
                       else processors),
        max_workers=max_workers,
        engine_lock=engine_lock,
    )
    report = simulate(units, processors)
    return ParallelQueryResult(result=result, report=report)
