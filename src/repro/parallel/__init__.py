"""Semantic parallelism: decomposition, conflicts, simulated scheduling
(paper, section 4; [HHM86]).

One user operation decomposes into per-molecule units of work that run
on real workers: threads overlapping latency under a narrow construction
lock, or — with ``mode="processes"`` — forked worker processes, each
constructing against a copy-on-write image of the engine taken at fork
time (true CPU parallelism, no shared mutable engine state).  The
simulated multiprocessor schedule replays the measured per-unit costs
either way."""

from repro.parallel.decompose import (
    ConstructionWorker,
    SemanticDecomposer,
    UnitOfWork,
    partition_units,
)
from repro.parallel.scheduler import (
    ScheduleReport,
    ScheduledUnit,
    build_conflict_edges,
    simulate,
)
from repro.parallel.api import ParallelQueryResult, parallel_select

__all__ = [
    "ConstructionWorker",
    "ParallelQueryResult",
    "ScheduleReport",
    "ScheduledUnit",
    "SemanticDecomposer",
    "UnitOfWork",
    "build_conflict_edges",
    "parallel_select",
    "partition_units",
    "simulate",
]
