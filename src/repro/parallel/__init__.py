"""Semantic parallelism: decomposition, conflicts, simulated scheduling
(paper, section 4; [HHM86])."""

from repro.parallel.decompose import (
    ConstructionWorker,
    SemanticDecomposer,
    UnitOfWork,
    partition_units,
)
from repro.parallel.scheduler import (
    ScheduleReport,
    ScheduledUnit,
    build_conflict_edges,
    simulate,
)
from repro.parallel.api import ParallelQueryResult, parallel_select

__all__ = [
    "ConstructionWorker",
    "ParallelQueryResult",
    "ScheduleReport",
    "ScheduledUnit",
    "SemanticDecomposer",
    "UnitOfWork",
    "build_conflict_edges",
    "parallel_select",
    "partition_units",
    "simulate",
]
