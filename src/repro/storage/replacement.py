"""Replacement policies for the database buffer.

Existing replacement algorithms (LRU, etc. [EH82]) are tailored to a single
page size.  PRIMA's buffer holds pages of five different sizes at once, so
the well-known LRU algorithm was altered appropriately (paper, section
3.3): when room is needed for an incoming page, the policy yields unpinned
victims in LRU order until the *byte* deficit is covered — possibly several
small pages for one large page, or one large page for a small one.

All policies implement the same narrow interface so the buffer manager and
the benchmarks can swap them freely:

* :meth:`on_admit` — a page entered the buffer,
* :meth:`on_access` — a resident page was fixed again,
* :meth:`on_evict` — the buffer removed a page (policy bookkeeping),
* :meth:`victims` — produce an eviction order over the evictable pages.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator, Protocol

from repro.storage.page import PageId


class ReplacementPolicy(Protocol):
    """Interface all buffer replacement policies implement."""

    name: str

    def on_admit(self, page_id: PageId) -> None: ...

    def on_access(self, page_id: PageId) -> None: ...

    def on_evict(self, page_id: PageId) -> None: ...

    def victims(self, evictable: set[PageId]) -> Iterator[PageId]: ...


class ModifiedLRU:
    """The paper's size-aware LRU for one buffer with mixed page sizes.

    Recency order is global across all page sizes; the buffer manager keeps
    asking for victims until enough *bytes* are free, which is exactly the
    modification needed over classic frame-count LRU.
    """

    name = "modified-lru"

    def __init__(self) -> None:
        self._order: OrderedDict[PageId, None] = OrderedDict()

    def on_admit(self, page_id: PageId) -> None:
        self._order[page_id] = None

    def on_access(self, page_id: PageId) -> None:
        if page_id in self._order:
            self._order.move_to_end(page_id)

    def on_evict(self, page_id: PageId) -> None:
        self._order.pop(page_id, None)

    def victims(self, evictable: set[PageId]) -> Iterator[PageId]:
        for page_id in list(self._order):
            if page_id in evictable:
                yield page_id


class FIFO:
    """First-in-first-out baseline: eviction order is admission order."""

    name = "fifo"

    def __init__(self) -> None:
        self._order: OrderedDict[PageId, None] = OrderedDict()

    def on_admit(self, page_id: PageId) -> None:
        self._order[page_id] = None

    def on_access(self, page_id: PageId) -> None:
        # FIFO ignores re-references.
        return

    def on_evict(self, page_id: PageId) -> None:
        self._order.pop(page_id, None)

    def victims(self, evictable: set[PageId]) -> Iterator[PageId]:
        for page_id in list(self._order):
            if page_id in evictable:
                yield page_id


class Clock:
    """Second-chance (CLOCK) baseline with one reference bit per page."""

    name = "clock"

    def __init__(self) -> None:
        self._ring: OrderedDict[PageId, bool] = OrderedDict()

    def on_admit(self, page_id: PageId) -> None:
        self._ring[page_id] = True

    def on_access(self, page_id: PageId) -> None:
        if page_id in self._ring:
            self._ring[page_id] = True

    def on_evict(self, page_id: PageId) -> None:
        self._ring.pop(page_id, None)

    def victims(self, evictable: set[PageId]) -> Iterator[PageId]:
        # Sweep the ring clearing reference bits until a clear page in the
        # evictable set is found; repeat for as many victims as requested.
        spared: set[PageId] = set()
        while True:
            chosen: PageId | None = None
            for page_id, referenced in list(self._ring.items()):
                if page_id not in evictable or page_id in spared:
                    continue
                if referenced:
                    self._ring[page_id] = False
                    continue
                chosen = page_id
                break
            if chosen is None:
                # Second sweep: everything had its bit set.
                for page_id in list(self._ring):
                    if page_id in evictable and page_id not in spared:
                        chosen = page_id
                        break
            if chosen is None:
                return
            spared.add(chosen)
            yield chosen


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a policy by its registry name."""
    policies: dict[str, type] = {
        ModifiedLRU.name: ModifiedLRU,
        FIFO.name: FIFO,
        Clock.name: Clock,
        "lru": ModifiedLRU,
    }
    try:
        return policies[name]()
    except KeyError:
        known = ", ".join(sorted(policies))
        raise ValueError(f"unknown replacement policy {name!r}; known: {known}")


def lru_order(policy: ReplacementPolicy, pages: Iterable[PageId]) -> list[PageId]:
    """Helper used by tests: the policy's eviction order over ``pages``."""
    return list(policy.victims(set(pages)))
