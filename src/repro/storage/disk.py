"""Simulated disk and file manager.

The original PRIMA ran on the file manager of the INCAS operating system
[Ne87], which supported exactly five block sizes and a *cluster mechanism*
enabling optimal transfer of whole page sequences, e.g. by chained I/O.

This module substitutes that hardware/OS substrate with a byte-accurate,
deterministic simulation:

* blocks are real ``bytes`` buffers, organised into named files, each file
  having one fixed block size;
* every transfer is accounted (block and byte counters) and charged against
  a simple service-time model (seek + rotational latency + transfer time);
* *chained I/O* reads a run of consecutive blocks paying the positioning
  cost only once, which is precisely the benefit the paper attributes to
  the file manager's cluster mechanism.

The cost model's absolute numbers are loosely calibrated to a late-1980s
disk (they only matter relatively — see DESIGN.md section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.constants import check_page_size
from repro.util.stats import Counters


@dataclass(frozen=True)
class DiskGeometry:
    """Service-time parameters of the simulated device (milliseconds)."""

    #: Average positioning (seek) time paid when access is not sequential.
    seek_ms: float = 16.0
    #: Average rotational latency paid per positioning.
    rotation_ms: float = 8.3
    #: Transfer rate in bytes per millisecond (~1.25 MB/s, ESDI class).
    transfer_bytes_per_ms: float = 1250.0
    #: Fixed software/controller overhead charged once per I/O *request*
    #: (a chained request moves many blocks but pays this only once —
    #: the benefit of the file manager's cluster mechanism beyond pure
    #: contiguity).
    request_overhead_ms: float = 2.0

    def transfer_ms(self, nbytes: int) -> float:
        """Pure transfer time for ``nbytes`` bytes."""
        return nbytes / self.transfer_bytes_per_ms

    def access_ms(self, nbytes: int, sequential: bool) -> float:
        """Full service time for one request of ``nbytes`` bytes."""
        positioning = 0.0 if sequential else self.seek_ms + self.rotation_ms
        return positioning + self.transfer_ms(nbytes)


class DiskFile:
    """One file of fixed block size on the simulated disk."""

    __slots__ = ("name", "block_size", "_blocks")

    def __init__(self, name: str, block_size: int) -> None:
        self.name = name
        self.block_size = check_page_size(block_size)
        self._blocks: dict[int, bytes] = {}

    @property
    def block_count(self) -> int:
        """Number of blocks ever written (files never shrink)."""
        return len(self._blocks)

    def has_block(self, block_no: int) -> bool:
        return block_no in self._blocks

    def block_numbers(self) -> list[int]:
        return sorted(self._blocks)


class SimulatedDisk:
    """File manager over a simulated device with full I/O accounting.

    Counters maintained (all monotonic):

    ``blocks_read`` / ``blocks_written``
        number of block transfers in each direction,
    ``bytes_read`` / ``bytes_written``
        byte volume of those transfers,
    ``seeks``
        number of non-sequential positionings paid,
    ``chained_reads`` / ``chained_writes``
        number of chained-I/O requests served.

    ``io_time_ms`` accumulates the simulated service time.
    """

    def __init__(self, geometry: DiskGeometry | None = None,
                 counters: Counters | None = None) -> None:
        self.geometry = geometry if geometry is not None else DiskGeometry()
        self.counters = counters if counters is not None else Counters()
        self.io_time_ms: float = 0.0
        self._files: dict[str, DiskFile] = {}
        # (file name, block no) of the block accessed last, for detecting
        # sequential access.  A real disk has one arm; so does this one.
        self._head: tuple[str, int] | None = None

    # -- file management ----------------------------------------------------

    def create_file(self, name: str, block_size: int) -> DiskFile:
        """Create a new file of the given (validated) block size."""
        if name in self._files:
            raise StorageError(f"disk file {name!r} already exists")
        handle = DiskFile(name, block_size)
        self._files[name] = handle
        return handle

    def drop_file(self, name: str) -> None:
        """Delete a file and all its blocks."""
        if name not in self._files:
            raise StorageError(f"disk file {name!r} does not exist")
        del self._files[name]
        if self._head is not None and self._head[0] == name:
            self._head = None

    def file(self, name: str) -> DiskFile:
        """Look up a file handle by name."""
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"disk file {name!r} does not exist") from None

    def file_names(self) -> list[str]:
        return sorted(self._files)

    # -- single-block transfers ---------------------------------------------

    def read_block(self, name: str, block_no: int) -> bytes:
        """Read one block; raises if the block was never written."""
        handle = self.file(name)
        try:
            data = handle._blocks[block_no]
        except KeyError:
            raise StorageError(
                f"block {block_no} of file {name!r} was never written"
            ) from None
        self.io_time_ms += self.geometry.request_overhead_ms
        self._account("read", name, block_no, handle.block_size, chained=False)
        return data

    def write_block(self, name: str, block_no: int, data: bytes) -> None:
        """Write one block; ``data`` must be exactly one block long."""
        handle = self.file(name)
        if len(data) != handle.block_size:
            raise StorageError(
                f"block write of {len(data)} bytes to file {name!r} with "
                f"block size {handle.block_size}"
            )
        handle._blocks[block_no] = bytes(data)
        self.io_time_ms += self.geometry.request_overhead_ms
        self._account("written", name, block_no, handle.block_size, chained=False)

    # -- chained I/O ----------------------------------------------------------

    def read_chained(self, name: str, block_nos: list[int]) -> list[bytes]:
        """Read many blocks in one request (the cluster mechanism).

        Blocks are transferred in the given order; each maximal run of
        consecutive block numbers pays positioning cost only once.
        """
        handle = self.file(name)
        out: list[bytes] = []
        for block_no in block_nos:
            if block_no not in handle._blocks:
                raise StorageError(
                    f"block {block_no} of file {name!r} was never written"
                )
        for index, block_no in enumerate(block_nos):
            first_of_run = index == 0 or block_no != block_nos[index - 1] + 1
            self._account("read", name, block_no, handle.block_size,
                          chained=not first_of_run)
            out.append(handle._blocks[block_no])
        if block_nos:
            self.io_time_ms += self.geometry.request_overhead_ms
            self.counters.bump("chained_reads")
        return out

    def write_chained(self, name: str, writes: list[tuple[int, bytes]]) -> None:
        """Write many blocks in one request (chained I/O)."""
        handle = self.file(name)
        for _, data in writes:
            if len(data) != handle.block_size:
                raise StorageError(
                    f"chained write with wrong block length to file {name!r}"
                )
        previous: int | None = None
        for block_no, data in writes:
            handle._blocks[block_no] = bytes(data)
            chained = previous is not None and block_no == previous + 1
            self._account("written", name, block_no, handle.block_size,
                          chained=chained)
            previous = block_no
        if writes:
            self.io_time_ms += self.geometry.request_overhead_ms
            self.counters.bump("chained_writes")

    # -- accounting -----------------------------------------------------------

    def _account(self, direction: str, name: str, block_no: int,
                 nbytes: int, chained: bool) -> None:
        sequential = chained or self._head == (name, block_no - 1)
        if not sequential:
            self.counters.bump("seeks")
        self.io_time_ms += self.geometry.access_ms(nbytes, sequential)
        self.counters.bump(f"blocks_{direction}")
        self.counters.bump(f"bytes_{direction}", nbytes)
        self._head = (name, block_no)

    def reset_accounting(self) -> None:
        """Zero all counters and the simulated clock (blocks are kept)."""
        self.counters.reset()
        self.io_time_ms = 0.0
        self._head = None
