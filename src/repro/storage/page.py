"""Pages: the unit of transfer between buffer and disk.

Every page starts with the *usual page header used for identification,
description, and fault tolerance* (paper, section 3.3).  Data pages use a
classic slotted layout so the access system can store variable-length
physical records and address them stably by slot number even when records
move during compaction.

Layout of a slotted page (all integers little-endian)::

    offset 0   u16  magic            (0xDB87 -- "database 1987")
    offset 2   u32  page_no
    offset 6   u8   page_type
    offset 7   u8   flags
    offset 8   u16  slot_count       (entries in the slot directory)
    offset 10  u16  free_start       (first free byte after record area)
    offset 12  u16  free_end         (first byte of the slot directory)
    offset 14  u16  checksum         (additive, for fault tolerance)
    ...        record area grows upward from PAGE_HEADER_SIZE
    ...        slot directory grows downward from the page end;
               each entry: u16 offset (0 = empty slot), u16 length

The maximum page size is 8 KByte, hence all offsets fit in u16.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import PageOverflowError, StorageError
from repro.storage.constants import PAGE_HEADER_SIZE, SLOT_ENTRY_SIZE, check_page_size

_MAGIC = 0xDB87
_HEADER = struct.Struct("<HIBBHHHH")

#: Page type tags stored in the header.
PAGE_TYPE_FREE = 0
PAGE_TYPE_DATA = 1
PAGE_TYPE_SEQUENCE_HEADER = 2
PAGE_TYPE_SEQUENCE_COMPONENT = 3
PAGE_TYPE_META = 4


@dataclass(frozen=True, order=True)
class PageId:
    """Globally unique page identifier: (segment name, page number)."""

    segment: str
    page_no: int

    def __repr__(self) -> str:
        return f"{self.segment}:{self.page_no}"


class Page:
    """A mutable in-buffer page image with slotted-record operations."""

    __slots__ = ("data",)

    def __init__(self, data: bytearray) -> None:
        if len(data) != check_page_size(len(data)):
            raise StorageError(f"bad page image length {len(data)}")
        self.data = data

    # -- construction ---------------------------------------------------------

    @classmethod
    def format(cls, size: int, page_no: int, page_type: int = PAGE_TYPE_DATA) -> "Page":
        """Create a freshly initialised empty page."""
        check_page_size(size)
        page = cls(bytearray(size))
        _HEADER.pack_into(page.data, 0, _MAGIC, page_no, page_type, 0,
                          0, PAGE_HEADER_SIZE, size, 0)
        return page

    @classmethod
    def from_bytes(cls, data: bytes) -> "Page":
        """Wrap a block image read from disk, verifying the header."""
        page = cls(bytearray(data))
        magic = page._field(0)
        if magic != _MAGIC:
            raise StorageError(f"bad page magic 0x{magic:04X}")
        return page

    def to_bytes(self) -> bytes:
        """Serialise for writing to disk, refreshing the checksum."""
        self._set_checksum()
        return bytes(self.data)

    # -- header accessors -----------------------------------------------------

    def _field(self, offset: int) -> int:
        return struct.unpack_from("<H", self.data, offset)[0]

    def _set_field(self, offset: int, value: int) -> None:
        struct.pack_into("<H", self.data, offset, value)

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def page_no(self) -> int:
        return struct.unpack_from("<I", self.data, 2)[0]

    @property
    def page_type(self) -> int:
        return self.data[6]

    @page_type.setter
    def page_type(self, value: int) -> None:
        self.data[6] = value

    @property
    def slot_count(self) -> int:
        return self._field(8)

    @property
    def free_start(self) -> int:
        return self._field(10)

    @property
    def free_end(self) -> int:
        return self._field(12)

    def _set_checksum(self) -> None:
        self._set_field(14, 0)
        self._set_field(14, sum(self.data) & 0xFFFF)

    def verify_checksum(self) -> bool:
        """True when the stored checksum matches the page contents."""
        stored = self._field(14)
        self._set_field(14, 0)
        actual = sum(self.data) & 0xFFFF
        self._set_field(14, stored)
        return stored == actual

    # -- slot directory -------------------------------------------------------

    def _slot_pos(self, slot: int) -> int:
        return self.size - (slot + 1) * SLOT_ENTRY_SIZE

    def _slot(self, slot: int) -> tuple[int, int]:
        if not 0 <= slot < self.slot_count:
            raise StorageError(f"slot {slot} out of range on page {self.page_no}")
        pos = self._slot_pos(slot)
        return struct.unpack_from("<HH", self.data, pos)

    def _set_slot(self, slot: int, offset: int, length: int) -> None:
        struct.pack_into("<HH", self.data, self._slot_pos(slot), offset, length)

    @property
    def free_space(self) -> int:
        """Contiguous free bytes between record area and slot directory."""
        return self.free_end - self.free_start

    def space_for(self, length: int) -> bool:
        """Can a new record of ``length`` bytes be inserted (new slot)?"""
        return self.free_space >= length + SLOT_ENTRY_SIZE

    # -- record operations ------------------------------------------------------

    def insert(self, payload: bytes) -> int:
        """Store ``payload`` in a free slot; returns the slot number."""
        needed = len(payload)
        # Reuse an empty slot when one exists (offset 0 marks a tombstone).
        slot = None
        for candidate in range(self.slot_count):
            if self._slot(candidate)[0] == 0:
                slot = candidate
                break
        grows_directory = slot is None
        needed_total = needed + (SLOT_ENTRY_SIZE if grows_directory else 0)
        if self.free_space < needed_total:
            self._compact()
        if self.free_space < needed_total:
            raise PageOverflowError(
                f"page {self.page_no}: {needed} bytes do not fit "
                f"({self.free_space} free)"
            )
        offset = self.free_start
        self.data[offset:offset + needed] = payload
        self._set_field(10, offset + needed)
        if grows_directory:
            slot = self.slot_count
            self._set_field(12, self.free_end - SLOT_ENTRY_SIZE)
            self._set_field(8, self.slot_count + 1)
        self._set_slot(slot, offset, needed)
        return slot

    def read(self, slot: int) -> bytes:
        """Return the payload stored in ``slot``."""
        offset, length = self._slot(slot)
        if offset == 0:
            raise StorageError(f"slot {slot} on page {self.page_no} is empty")
        return bytes(self.data[offset:offset + length])

    def delete(self, slot: int) -> None:
        """Remove the record in ``slot`` (the slot becomes reusable)."""
        offset, _ = self._slot(slot)
        if offset == 0:
            raise StorageError(f"slot {slot} on page {self.page_no} is empty")
        self._set_slot(slot, 0, 0)

    def update(self, slot: int, payload: bytes) -> None:
        """Replace the record in ``slot`` with ``payload`` (may relocate)."""
        offset, length = self._slot(slot)
        if offset == 0:
            raise StorageError(f"slot {slot} on page {self.page_no} is empty")
        if len(payload) <= length:
            self.data[offset:offset + len(payload)] = payload
            self._set_slot(slot, offset, len(payload))
            return
        # Relocate within the page.  Save the old image first: compaction
        # moves records, so a failed grow must re-insert, not re-point.
        old_payload = bytes(self.data[offset:offset + length])
        self._set_slot(slot, 0, 0)
        if self.free_space < len(payload):
            self._compact()
        if self.free_space < len(payload):
            restore_offset = self.free_start
            self.data[restore_offset:restore_offset + length] = old_payload
            self._set_field(10, restore_offset + length)
            self._set_slot(slot, restore_offset, length)
            raise PageOverflowError(
                f"page {self.page_no}: update to {len(payload)} bytes does not fit"
            )
        new_offset = self.free_start
        self.data[new_offset:new_offset + len(payload)] = payload
        self._set_field(10, new_offset + len(payload))
        self._set_slot(slot, new_offset, len(payload))

    def slots(self) -> list[int]:
        """Slot numbers currently holding a record, in slot order."""
        return [s for s in range(self.slot_count) if self._slot(s)[0] != 0]

    def records(self) -> list[tuple[int, bytes]]:
        """All (slot, payload) pairs on the page."""
        return [(s, self.read(s)) for s in self.slots()]

    def _compact(self) -> None:
        """Squeeze out holes left by deletes and shrinking updates.

        Slot numbers are stable record addresses (the access system stores
        them in its addressing structure), so the directory is never
        trimmed — tombstoned slots are reused by later inserts instead.
        """
        live = [(slot, self.read(slot)) for slot in self.slots()]
        cursor = PAGE_HEADER_SIZE
        images = []
        for slot, payload in live:
            images.append((slot, cursor, payload))
            cursor += len(payload)
        for slot, offset, payload in images:
            self.data[offset:offset + len(payload)] = payload
            self._set_slot(slot, offset, len(payload))
        self._set_field(10, cursor)

    # -- raw payload area (for page-sequence component pages) -------------------

    def write_payload(self, payload: bytes) -> None:
        """Overwrite the whole non-header area with ``payload``."""
        capacity = self.size - PAGE_HEADER_SIZE
        if len(payload) > capacity:
            raise PageOverflowError(
                f"payload of {len(payload)} bytes exceeds capacity {capacity}"
            )
        start = PAGE_HEADER_SIZE
        self.data[start:start + len(payload)] = payload
        self._set_field(8, 0)
        self._set_field(10, start + len(payload))
        self._set_field(12, self.size)

    def read_payload(self) -> bytes:
        """Return the raw payload previously written with write_payload."""
        return bytes(self.data[PAGE_HEADER_SIZE:self.free_start])

    @classmethod
    def payload_capacity(cls, size: int) -> int:
        """Raw payload capacity of a page of ``size`` bytes."""
        return check_page_size(size) - PAGE_HEADER_SIZE
