"""Segments: named containers of equal-sized pages.

As in conventional systems the objects offered by the storage system are
segments divided into pages of equal size (paper, section 3.3); in PRIMA
each segment additionally *chooses* one of the five supported page sizes,
so small metadata lives in small pages while atom clusters use large ones.

A segment maps 1:1 onto a file of the simulated disk whose block size
equals the page size, making the block/page mapping trivial — the reason
the paper gives for restricting the supported sizes.
"""

from __future__ import annotations

from repro.errors import PageNotFoundError, SegmentError
from repro.storage.constants import check_page_size
from repro.storage.disk import SimulatedDisk
from repro.storage.page import PAGE_TYPE_DATA, Page, PageId


class Segment:
    """Allocation bookkeeping for one segment.

    Page numbers start at 1 (0 is reserved so that "no page" can be encoded
    as 0 in on-page structures).  Freed pages are recycled in FIFO order to
    keep page numbers dense, which maximises chained-I/O opportunities.
    """

    def __init__(self, name: str, page_size: int, disk: SimulatedDisk) -> None:
        self.name = name
        self.page_size = check_page_size(page_size)
        self._disk = disk
        self._next_page_no = 1
        self._free: list[int] = []
        self._allocated: set[int] = set()

    # -- inspection -----------------------------------------------------------

    @property
    def allocated_pages(self) -> int:
        return len(self._allocated)

    def page_numbers(self) -> list[int]:
        return sorted(self._allocated)

    def owns(self, page_no: int) -> bool:
        return page_no in self._allocated

    # -- allocation -----------------------------------------------------------

    def allocate(self, page_type: int = PAGE_TYPE_DATA) -> tuple[PageId, Page]:
        """Allocate a fresh page; returns its id and formatted image.

        The image is *not yet* resident or on disk — the storage system
        admits it to the buffer via ``fix_new`` so the first write is
        buffered like any other.
        """
        if self._free:
            page_no = self._free.pop(0)
        else:
            page_no = self._next_page_no
            self._next_page_no += 1
        self._allocated.add(page_no)
        page = Page.format(self.page_size, page_no, page_type)
        return PageId(self.name, page_no), page

    def free(self, page_no: int) -> None:
        """Return a page to the free list."""
        if page_no not in self._allocated:
            raise PageNotFoundError(
                f"page {page_no} is not allocated in segment {self.name!r}"
            )
        self._allocated.remove(page_no)
        self._free.append(page_no)


class SegmentDirectory:
    """The set of all segments of one database."""

    def __init__(self, disk: SimulatedDisk) -> None:
        self._disk = disk
        self._segments: dict[str, Segment] = {}

    def create(self, name: str, page_size: int) -> Segment:
        if name in self._segments:
            raise SegmentError(f"segment {name!r} already exists")
        check_page_size(page_size)
        self._disk.create_file(name, page_size)
        segment = Segment(name, page_size, self._disk)
        self._segments[name] = segment
        return segment

    def drop(self, name: str) -> None:
        if name not in self._segments:
            raise SegmentError(f"segment {name!r} does not exist")
        del self._segments[name]
        self._disk.drop_file(name)

    def get(self, name: str) -> Segment:
        try:
            return self._segments[name]
        except KeyError:
            raise SegmentError(f"segment {name!r} does not exist") from None

    def exists(self, name: str) -> bool:
        return name in self._segments

    def names(self) -> list[str]:
        return sorted(self._segments)
