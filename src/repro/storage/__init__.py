"""The storage system of PRIMA (paper, section 3.3).

Provides segments with five page sizes, a database buffer whose LRU is
modified to handle mixed page sizes, and page sequences as arbitrary-length
containers transferred by chained I/O.
"""

from repro.storage.buffer import BufferManager, PartitionedBufferManager
from repro.storage.constants import DEFAULT_PAGE_SIZE, PAGE_SIZES, check_page_size
from repro.storage.disk import DiskGeometry, SimulatedDisk
from repro.storage.page import (
    PAGE_TYPE_DATA,
    PAGE_TYPE_FREE,
    PAGE_TYPE_META,
    PAGE_TYPE_SEQUENCE_COMPONENT,
    PAGE_TYPE_SEQUENCE_HEADER,
    Page,
    PageId,
)
from repro.storage.page_sequence import PageSequenceManager
from repro.storage.replacement import FIFO, Clock, ModifiedLRU, make_policy
from repro.storage.segment import Segment, SegmentDirectory
from repro.storage.system import StorageSystem

__all__ = [
    "BufferManager",
    "Clock",
    "DEFAULT_PAGE_SIZE",
    "DiskGeometry",
    "FIFO",
    "ModifiedLRU",
    "PAGE_SIZES",
    "PAGE_TYPE_DATA",
    "PAGE_TYPE_FREE",
    "PAGE_TYPE_META",
    "PAGE_TYPE_SEQUENCE_COMPONENT",
    "PAGE_TYPE_SEQUENCE_HEADER",
    "Page",
    "PageId",
    "PageSequenceManager",
    "PartitionedBufferManager",
    "Segment",
    "SegmentDirectory",
    "SimulatedDisk",
    "StorageSystem",
    "check_page_size",
    "make_policy",
]
