"""The database buffer: fix/unfix page access on top of the simulated disk.

Two buffer organisations are provided, mirroring the design alternatives
discussed in section 3.3 of the paper:

* :class:`BufferManager` — **one** buffer of a fixed byte budget holding
  pages of all five sizes at once, managed by a size-aware replacement
  policy (the paper's *modified LRU*, or the FIFO/CLOCK baselines).
* :class:`PartitionedBufferManager` — the rejected alternative: the byte
  budget is statically divided into five independent sub-buffers, one per
  page size, each with its own classic LRU.  The paper argues this is
  inflexible when reference patterns change; benchmark A1 measures that.

Pages are fixed (pinned) while in use and unfixed afterwards; fixed pages
are never evicted.  Dirty pages are written back on eviction or flush.
"""

from __future__ import annotations

from repro.errors import BufferFullError, StorageError
from repro.storage.constants import PAGE_SIZES
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageId
from repro.storage.replacement import ReplacementPolicy, make_policy
from repro.util.stats import Counters


class _Frame:
    """One resident page: image plus pin/dirty bookkeeping."""

    __slots__ = ("page", "pins", "dirty")

    def __init__(self, page: Page) -> None:
        self.page = page
        self.pins = 0
        self.dirty = False


class BufferManager:
    """A single buffer with a byte budget shared by all page sizes.

    Counters maintained: ``fixes``, ``hits``, ``misses``, ``evictions``,
    ``dirty_writebacks``.  The hit ratio ``hits / fixes`` is the quantity
    buffer benchmarks report.
    """

    def __init__(self, disk: SimulatedDisk, capacity_bytes: int = 64 * 8192,
                 policy: str | ReplacementPolicy = "modified-lru",
                 counters: Counters | None = None) -> None:
        if capacity_bytes < min(PAGE_SIZES):
            raise StorageError(
                f"buffer of {capacity_bytes} bytes cannot hold even the "
                f"smallest page"
            )
        self.disk = disk
        self.capacity_bytes = capacity_bytes
        self.policy: ReplacementPolicy = (
            make_policy(policy) if isinstance(policy, str) else policy
        )
        self.counters = counters if counters is not None else Counters()
        self._frames: dict[PageId, _Frame] = {}
        self._used_bytes = 0

    # -- inspection -----------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def resident(self) -> set[PageId]:
        """Page ids currently held in the buffer."""
        return set(self._frames)

    def is_fixed(self, page_id: PageId) -> bool:
        frame = self._frames.get(page_id)
        return frame is not None and frame.pins > 0

    def hit_ratio(self) -> float:
        fixes = self.counters.get("fixes")
        return self.counters.get("hits") / fixes if fixes else 0.0

    # -- the fix/unfix protocol -------------------------------------------------

    def fix(self, page_id: PageId) -> Page:
        """Pin ``page_id`` in the buffer, loading it from disk on a miss."""
        self.counters.bump("fixes")
        frame = self._frames.get(page_id)
        if frame is not None:
            self.counters.bump("hits")
            frame.pins += 1
            self.policy.on_access(page_id)
            return frame.page
        self.counters.bump("misses")
        data = self.disk.read_block(page_id.segment, page_id.page_no)
        page = Page.from_bytes(data)
        # The page header exists "for identification, description, and
        # fault tolerance" (paper, 3.3): verify both on every miss.
        if page.page_no != page_id.page_no:
            raise StorageError(
                f"block {page_id} carries page number {page.page_no}"
            )
        if not page.verify_checksum():
            raise StorageError(f"checksum mismatch reading page {page_id}")
        self._admit(page_id, page, pins=1)
        return page

    def fix_new(self, page_id: PageId, page: Page, dirty: bool = True) -> Page:
        """Pin a page image that was not loaded through :meth:`fix`.

        Freshly formatted pages are dirty (default); pages admitted from a
        chained read already match their disk image and pass
        ``dirty=False``.
        """
        if page_id in self._frames:
            raise StorageError(f"page {page_id} is already resident")
        self._admit(page_id, page, pins=1, dirty=dirty)
        return page

    def unfix(self, page_id: PageId, dirty: bool = False) -> None:
        """Release one pin; ``dirty=True`` marks the image modified."""
        frame = self._frames.get(page_id)
        if frame is None or frame.pins == 0:
            raise StorageError(f"page {page_id} is not fixed")
        frame.pins -= 1
        if dirty:
            frame.dirty = True

    # -- internal admission/eviction ---------------------------------------------

    def _admit(self, page_id: PageId, page: Page, pins: int,
               dirty: bool = False) -> None:
        self._make_room(page.size)
        frame = _Frame(page)
        frame.pins = pins
        frame.dirty = dirty
        self._frames[page_id] = frame
        self._used_bytes += page.size
        self.policy.on_admit(page_id)

    def _make_room(self, needed: int) -> None:
        if self._used_bytes + needed <= self.capacity_bytes:
            return
        evictable = {pid for pid, f in self._frames.items() if f.pins == 0}
        for victim in self.policy.victims(evictable):
            self._evict(victim)
            if self._used_bytes + needed <= self.capacity_bytes:
                return
        raise BufferFullError(
            f"cannot free {needed} bytes: "
            f"{len(self._frames) - len(evictable)} pages are fixed"
        )

    def _evict(self, page_id: PageId) -> None:
        frame = self._frames.pop(page_id)
        self._used_bytes -= frame.page.size
        self.policy.on_evict(page_id)
        self.counters.bump("evictions")
        if frame.dirty:
            self._write_back(page_id, frame.page)

    def _write_back(self, page_id: PageId, page: Page) -> None:
        self.disk.write_block(page_id.segment, page_id.page_no, page.to_bytes())
        self.counters.bump("dirty_writebacks")

    # -- flushing ------------------------------------------------------------------

    def flush(self, page_id: PageId | None = None) -> None:
        """Write back dirty images; all of them when ``page_id`` is None."""
        if page_id is not None:
            frame = self._frames.get(page_id)
            if frame is not None and frame.dirty:
                self._write_back(page_id, frame.page)
                frame.dirty = False
            return
        for pid in sorted(self._frames):
            frame = self._frames[pid]
            if frame.dirty:
                self._write_back(pid, frame.page)
                frame.dirty = False

    def drop_segment_pages(self, segment: str) -> None:
        """Discard all resident pages of a dropped segment (no write-back)."""
        for pid in [p for p in self._frames if p.segment == segment]:
            frame = self._frames.pop(pid)
            self._used_bytes -= frame.page.size
            self.policy.on_evict(pid)


class PartitionedBufferManager:
    """Statically partitioned buffer: one independent sub-buffer per size.

    The byte budget is split over the five page sizes according to
    ``shares`` (default: equal fifths).  Each partition runs classic LRU.
    Exposes the same interface as :class:`BufferManager` so the two are
    interchangeable in the storage system and in benchmarks.
    """

    def __init__(self, disk: SimulatedDisk, capacity_bytes: int = 64 * 8192,
                 shares: dict[int, float] | None = None,
                 counters: Counters | None = None) -> None:
        self.disk = disk
        self.capacity_bytes = capacity_bytes
        self.counters = counters if counters is not None else Counters()
        if shares is None:
            shares = {size: 1.0 / len(PAGE_SIZES) for size in PAGE_SIZES}
        unknown = set(shares) - set(PAGE_SIZES)
        if unknown:
            raise StorageError(f"shares given for unsupported page sizes {unknown}")
        total = sum(shares.values())
        self._parts: dict[int, BufferManager] = {}
        for size in PAGE_SIZES:
            share = shares.get(size, 0.0) / total
            budget = max(int(capacity_bytes * share), size)
            self._parts[size] = BufferManager(
                disk, capacity_bytes=budget, policy="modified-lru",
                counters=self.counters,
            )

    def partition(self, size: int) -> BufferManager:
        """The sub-buffer responsible for pages of ``size`` bytes."""
        try:
            return self._parts[size]
        except KeyError:
            raise StorageError(f"no partition for page size {size}") from None

    def _part_for(self, page_id: PageId) -> BufferManager:
        size = self.disk.file(page_id.segment).block_size
        return self.partition(size)

    # Interface-compatible delegates -------------------------------------------

    @property
    def used_bytes(self) -> int:
        return sum(part.used_bytes for part in self._parts.values())

    def resident(self) -> set[PageId]:
        out: set[PageId] = set()
        for part in self._parts.values():
            out |= part.resident()
        return out

    def is_fixed(self, page_id: PageId) -> bool:
        return self._part_for(page_id).is_fixed(page_id)

    def hit_ratio(self) -> float:
        fixes = self.counters.get("fixes")
        return self.counters.get("hits") / fixes if fixes else 0.0

    def fix(self, page_id: PageId) -> Page:
        return self._part_for(page_id).fix(page_id)

    def fix_new(self, page_id: PageId, page: Page, dirty: bool = True) -> Page:
        return self.partition(page.size).fix_new(page_id, page, dirty)

    def unfix(self, page_id: PageId, dirty: bool = False) -> None:
        self._part_for(page_id).unfix(page_id, dirty)

    def flush(self, page_id: PageId | None = None) -> None:
        if page_id is not None:
            self._part_for(page_id).flush(page_id)
            return
        for part in self._parts.values():
            part.flush()

    def drop_segment_pages(self, segment: str) -> None:
        for part in self._parts.values():
            part.drop_segment_pages(segment)
