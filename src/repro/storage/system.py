"""The storage system facade: segments + buffer + page sequences.

This is the interface the access system programs against (Fig. 3.1:
"page allocation structures -> page-oriented").  It bundles

* a :class:`~repro.storage.segment.SegmentDirectory` over a simulated disk,
* a buffer manager (single size-aware buffer or static partitions),
* page allocation with buffered first writes,
* and the :class:`~repro.storage.page_sequence.PageSequenceManager`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.errors import PageNotFoundError
from repro.storage.buffer import BufferManager, PartitionedBufferManager
from repro.storage.constants import DEFAULT_PAGE_SIZE
from repro.storage.disk import DiskGeometry, SimulatedDisk
from repro.storage.page import PAGE_TYPE_DATA, Page, PageId
from repro.storage.segment import Segment, SegmentDirectory
from repro.util.stats import Counters


class StorageSystem:
    """Everything below the access system, behind one object."""

    def __init__(self, buffer_capacity: int = 256 * 8192,
                 policy: str = "modified-lru",
                 partitioned: bool = False,
                 geometry: DiskGeometry | None = None) -> None:
        self.counters = Counters()
        self.disk = SimulatedDisk(geometry=geometry)
        self.segments = SegmentDirectory(self.disk)
        if partitioned:
            self.buffer: BufferManager | PartitionedBufferManager = (
                PartitionedBufferManager(self.disk, buffer_capacity,
                                         counters=self.counters)
            )
        else:
            self.buffer = BufferManager(self.disk, buffer_capacity,
                                        policy=policy, counters=self.counters)
        # Imported here to avoid a module cycle (page_sequence needs the
        # StorageSystem type only for annotations).
        from repro.storage.page_sequence import PageSequenceManager
        self.sequences = PageSequenceManager(self)

    # -- segments ---------------------------------------------------------------

    def create_segment(self, name: str, page_size: int = DEFAULT_PAGE_SIZE) -> Segment:
        """Create a segment whose pages all have ``page_size`` bytes."""
        return self.segments.create(name, page_size)

    def drop_segment(self, name: str) -> None:
        """Drop a segment, discarding its buffered pages without write-back."""
        self.buffer.drop_segment_pages(name)
        self.segments.drop(name)

    def segment(self, name: str) -> Segment:
        return self.segments.get(name)

    # -- pages ---------------------------------------------------------------------

    def allocate_page(self, segment_name: str,
                      page_type: int = PAGE_TYPE_DATA) -> PageId:
        """Allocate and buffer a fresh page; returns its id (page unfixed)."""
        segment = self.segments.get(segment_name)
        page_id, page = segment.allocate(page_type)
        self.buffer.fix_new(page_id, page)
        self.buffer.unfix(page_id, dirty=True)
        return page_id

    def free_page(self, page_id: PageId) -> None:
        """Free a page; its buffered image is discarded."""
        segment = self.segments.get(page_id.segment)
        if not segment.owns(page_id.page_no):
            raise PageNotFoundError(f"page {page_id} is not allocated")
        # Evict silently: freed pages must not be written back.
        frames = getattr(self.buffer, "_frames", None)
        if frames is not None and page_id in frames:
            frame = frames.pop(page_id)
            self.buffer._used_bytes -= frame.page.size  # noqa: SLF001
            self.buffer.policy.on_evict(page_id)
        elif isinstance(self.buffer, PartitionedBufferManager):
            part = self.buffer.partition(segment.page_size)
            if page_id in part._frames:  # noqa: SLF001
                frame = part._frames.pop(page_id)  # noqa: SLF001
                part._used_bytes -= frame.page.size  # noqa: SLF001
                part.policy.on_evict(page_id)
        segment.free(page_id.page_no)

    def fix(self, page_id: PageId) -> Page:
        """Pin a page in the buffer (loading it on a miss)."""
        return self.buffer.fix(page_id)

    def unfix(self, page_id: PageId, dirty: bool = False) -> None:
        """Release a pin, optionally marking the page modified."""
        self.buffer.unfix(page_id, dirty)

    @contextmanager
    def page(self, page_id: PageId, write: bool = False) -> Iterator[Page]:
        """Scoped fix/unfix: ``with storage.page(pid, write=True) as p: ...``"""
        page = self.fix(page_id)
        try:
            yield page
        finally:
            self.unfix(page_id, dirty=write)

    def flush(self) -> None:
        """Write every dirty buffered page back to disk."""
        self.buffer.flush()

    # -- reporting --------------------------------------------------------------

    def io_report(self) -> dict[str, float | int]:
        """Disk and buffer counters in one dictionary (for benchmarks)."""
        report: dict[str, float | int] = dict(self.disk.counters.snapshot())
        report.update(self.counters.snapshot())
        report["io_time_ms"] = round(self.disk.io_time_ms, 3)
        return report

    def reset_accounting(self) -> None:
        """Zero disk and buffer counters (resident pages are kept)."""
        self.disk.reset_accounting()
        self.counters.reset()
