"""Storage-system constants.

The storage system of PRIMA supports pages of different length.  The page
size of each segment can be chosen to be 1/2, 1, 2, 4 or 8 KByte; the
number of sizes is restricted to these five values because the file manager
of the underlying operating system supports exactly these block sizes
(paper, section 3.3).
"""

from __future__ import annotations

from repro.errors import PageSizeError

#: The five legal page/block sizes in bytes (1/2, 1, 2, 4, 8 KByte).
PAGE_SIZES: tuple[int, ...] = (512, 1024, 2048, 4096, 8192)

#: Default page size for segments that do not choose one explicitly.
DEFAULT_PAGE_SIZE: int = 8192

#: Bytes reserved at the start of every page for the common page header
#: ("used for identification, description, and fault tolerance").
PAGE_HEADER_SIZE: int = 16

#: Bytes per entry in the slot directory that grows from the page end.
SLOT_ENTRY_SIZE: int = 4


def check_page_size(size: int) -> int:
    """Validate ``size`` against the five supported sizes and return it."""
    if size not in PAGE_SIZES:
        supported = ", ".join(str(s) for s in PAGE_SIZES)
        raise PageSizeError(
            f"unsupported page size {size}; the file manager supports "
            f"exactly these block sizes: {supported}"
        )
    return size
