"""Page sequences: arbitrary-length containers (paper, section 3.3).

The five page sizes do not meet the access system's need for containers of
arbitrary length (atom clusters, long strings like texts and images).  The
storage system therefore offers *page sequences*: one **header page**
carrying the usual page header plus a *page-sequence header* — the list of
all component pages — and any number of **component pages** holding the
payload.  A page sequence is read or written as a whole with chained I/O,
and an auxiliary addressing structure provides *relative addressing* within
the sequence, giving fast access to single atoms of an atom cluster
(Fig. 3.2c).

On-page encoding of the sequence header payload::

    u32 total_length     (bytes of payload stored across components)
    u32 component_count
    u32 component_page_no  * component_count
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from repro.errors import StorageError
from repro.storage.page import (
    PAGE_TYPE_SEQUENCE_COMPONENT,
    PAGE_TYPE_SEQUENCE_HEADER,
    Page,
    PageId,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.system import StorageSystem

_U32 = struct.Struct("<I")


def _encode_header(total_length: int, components: list[int]) -> bytes:
    parts = [_U32.pack(total_length), _U32.pack(len(components))]
    parts.extend(_U32.pack(no) for no in components)
    return b"".join(parts)

def _decode_header(payload: bytes) -> tuple[int, list[int]]:
    if len(payload) < 8:
        raise StorageError("corrupt page-sequence header")
    total_length = _U32.unpack_from(payload, 0)[0]
    count = _U32.unpack_from(payload, 4)[0]
    components = [
        _U32.unpack_from(payload, 8 + 4 * i)[0] for i in range(count)
    ]
    return total_length, components


class PageSequenceManager:
    """Create, read, write and drop page sequences on a storage system."""

    def __init__(self, storage: "StorageSystem") -> None:
        self._storage = storage

    # -- lifecycle ---------------------------------------------------------------

    def create(self, segment_name: str) -> PageId:
        """Create an empty page sequence; returns the header page id."""
        header_id = self._storage.allocate_page(
            segment_name, PAGE_TYPE_SEQUENCE_HEADER
        )
        with self._storage.page(header_id, write=True) as header:
            header.write_payload(_encode_header(0, []))
        return header_id

    def drop(self, header_id: PageId) -> None:
        """Free the header page and every component page."""
        _, components = self._read_header(header_id)
        for page_no in components:
            self._storage.free_page(PageId(header_id.segment, page_no))
        self._storage.free_page(header_id)

    # -- whole-sequence I/O ---------------------------------------------------------

    def write(self, header_id: PageId, payload: bytes) -> None:
        """Replace the sequence contents with ``payload`` (any length).

        Component pages are allocated or freed as the length requires; the
        write-back itself happens through the buffer like any page write.
        """
        segment = self._storage.segment(header_id.segment)
        chunk = Page.payload_capacity(segment.page_size)
        needed = (len(payload) + chunk - 1) // chunk if payload else 0
        _, components = self._read_header(header_id)

        while len(components) < needed:
            page_id = self._storage.allocate_page(
                header_id.segment, PAGE_TYPE_SEQUENCE_COMPONENT
            )
            components.append(page_id.page_no)
        while len(components) > needed:
            page_no = components.pop()
            self._storage.free_page(PageId(header_id.segment, page_no))

        for index, page_no in enumerate(components):
            piece = payload[index * chunk:(index + 1) * chunk]
            component_id = PageId(header_id.segment, page_no)
            with self._storage.page(component_id, write=True) as page:
                page.page_type = PAGE_TYPE_SEQUENCE_COMPONENT
                page.write_payload(piece)

        with self._storage.page(header_id, write=True) as header:
            header.write_payload(_encode_header(len(payload), components))

    def read(self, header_id: PageId, chained: bool = True) -> bytes:
        """Read the whole sequence.

        With ``chained=True`` (the default) component pages that are not
        buffer-resident are fetched from disk in **one chained-I/O
        request** — the optimal transfer the paper attributes to the file
        manager's cluster mechanism.  With ``chained=False`` every page is
        fetched individually (benchmark A7 contrasts the two).
        """
        total_length, components = self._read_header(header_id)
        if not components:
            return b""
        segment_name = header_id.segment
        pieces: dict[int, bytes] = {}
        if chained:
            resident = self._storage.buffer.resident()
            missing = [
                no for no in components
                if PageId(segment_name, no) not in resident
            ]
            if missing:
                blocks = self._storage.disk.read_chained(segment_name, missing)
                for no, data in zip(missing, blocks):
                    page = Page.from_bytes(data)
                    if not page.verify_checksum():
                        raise StorageError(
                            f"checksum mismatch in page sequence component "
                            f"{segment_name}:{no}"
                        )
                    page_id = PageId(segment_name, no)
                    self._storage.buffer.fix_new(page_id, page, dirty=False)
                    self._storage.buffer.unfix(page_id)
                    pieces[no] = page.read_payload()
        for no in components:
            if no in pieces:
                continue
            with self._storage.page(PageId(segment_name, no)) as page:
                pieces[no] = page.read_payload()
        payload = b"".join(pieces[no] for no in components)
        if len(payload) != total_length:
            raise StorageError(
                f"page sequence {header_id}: expected {total_length} bytes, "
                f"reassembled {len(payload)}"
            )
        return payload

    # -- relative addressing ---------------------------------------------------------

    def length(self, header_id: PageId) -> int:
        """Current payload length of the sequence in bytes."""
        return self._read_header(header_id)[0]

    def component_pages(self, header_id: PageId) -> list[PageId]:
        """Ids of the component pages, in payload order."""
        _, components = self._read_header(header_id)
        return [PageId(header_id.segment, no) for no in components]

    def read_slice(self, header_id: PageId, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``offset``.

        Only the component pages covering the byte range are touched —
        this is the *relative addressing within the page sequence* that
        achieves faster access to single atoms of an atom cluster.
        """
        if offset < 0 or length < 0:
            raise StorageError("negative offset/length in read_slice")
        total_length, components = self._read_header(header_id)
        if offset + length > total_length:
            raise StorageError(
                f"slice [{offset}, {offset + length}) exceeds sequence "
                f"length {total_length}"
            )
        if length == 0:
            return b""
        segment = self._storage.segment(header_id.segment)
        chunk = Page.payload_capacity(segment.page_size)
        first = offset // chunk
        last = (offset + length - 1) // chunk
        pieces: list[bytes] = []
        for index in range(first, last + 1):
            page_id = PageId(header_id.segment, components[index])
            with self._storage.page(page_id) as page:
                pieces.append(page.read_payload())
        blob = b"".join(pieces)
        start = offset - first * chunk
        return blob[start:start + length]

    # -- internals --------------------------------------------------------------------

    def _read_header(self, header_id: PageId) -> tuple[int, list[int]]:
        with self._storage.page(header_id) as header:
            if header.page_type != PAGE_TYPE_SEQUENCE_HEADER:
                raise StorageError(f"page {header_id} is not a sequence header")
            return _decode_header(header.read_payload())
