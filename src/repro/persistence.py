"""Database checkpointing: save/load a PRIMA instance to a file.

The original prototype persisted through the INCAS file manager; the
reproduction's simulated disk lives in memory, so durability is provided as
explicit *checkpointing*: :func:`save` serialises the complete instance —
disk blocks, buffer, catalogs, addressing structures, tuning structures —
and :func:`load` restores it bit-identically.  The file carries a magic
header and a format version so foreign files fail fast.

    >>> from repro import Prima
    >>> from repro.persistence import save, load
    >>> db = Prima()
    >>> _ = db.execute("CREATE ATOM_TYPE a (a_id: IDENTIFIER, n: INTEGER)")
    >>> _ = db.execute("INSERT a (n = 7)")
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "db.prima")
    >>> save(db, path)
    >>> len(load(path).query("SELECT ALL FROM a"))
    1
"""

from __future__ import annotations

import pickle
from pathlib import Path

from repro.db import Prima
from repro.errors import PrimaError

#: File magic + format version.
_MAGIC = b"PRIMA-REPRO\x00"
_VERSION = 1


def save(db: Prima, path: str | Path) -> int:
    """Checkpoint ``db`` to ``path``; returns the bytes written.

    Dirty buffered pages are flushed and deferred updates propagated
    first, so the stored image is a clean commit point.
    """
    db.commit()
    payload = pickle.dumps(db, protocol=pickle.HIGHEST_PROTOCOL)
    target = Path(path)
    with open(target, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(_VERSION.to_bytes(4, "little"))
        handle.write(payload)
    return len(_MAGIC) + 4 + len(payload)


def load(path: str | Path) -> Prima:
    """Restore a PRIMA instance checkpointed by :func:`save`."""
    source = Path(path)
    if not source.exists():
        raise PrimaError(f"no database file at {source}")
    with open(source, "rb") as handle:
        magic = handle.read(len(_MAGIC))
        if magic != _MAGIC:
            raise PrimaError(f"{source} is not a PRIMA database file")
        version = int.from_bytes(handle.read(4), "little")
        if version != _VERSION:
            raise PrimaError(
                f"{source} has format version {version}; this build reads "
                f"version {_VERSION}"
            )
        db = pickle.load(handle)
    if not isinstance(db, Prima):
        raise PrimaError(f"{source} does not contain a PRIMA instance")
    return db
