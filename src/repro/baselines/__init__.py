"""Baseline data models for the Fig. 2.1 comparison.

The paper's Fig. 2.1 contrasts three ways of modeling boundary
representations: the **hierarchical** approach (IMS-like, redundant copies
of shared components, no upward traversal), the **network** approach
(CODASYL-like, no redundancy but extra relation records and indirection),
and MAD's **direct and symmetric** approach.  These baselines make the
comparison executable and measurable.
"""

from repro.baselines.hierarchical import HierarchicalStore
from repro.baselines.network import NetworkStore

__all__ = ["HierarchicalStore", "NetworkStore"]
