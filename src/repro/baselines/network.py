"""The network (CODASYL-like) baseline of Fig. 2.1.

The network approach avoids redundancy, but at the cost of introducing a
number of 'relation records' that represent n:m relationships (paper,
2.1): every face-edge and edge-point connection becomes its own link
record sitting between the two entity records.  Traversal is symmetric but
pays an extra indirection hop through the link record in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.access.encoding import encoded_size
from repro.db import Prima
from repro.mad.types import Surrogate


@dataclass
class _Record:
    kind: str
    values: dict[str, Any]


class NetworkStore:
    """Entity records plus relation records, owner/member chains."""

    def __init__(self) -> None:
        self._entities: dict[Surrogate, _Record] = {}
        #: link kind -> list of (owner, member) pairs (the relation records)
        self._links: dict[str, list[tuple[Surrogate, Surrogate]]] = {}
        self.record_count = 0
        self.byte_size = 0
        self.link_record_count = 0

    # -- loading -------------------------------------------------------------------

    def load_from_prima(self, db: Prima) -> None:
        """Replicate the brep databases' entities and connections."""
        for type_name in ("brep", "face", "edge", "point"):
            for surrogate, values in db.access.atoms.atoms_of_type(type_name):
                stripped = {
                    name: value for name, value in values.items()
                    if not isinstance(value, Surrogate)
                    and not (isinstance(value, list) and value
                             and isinstance(value[0], Surrogate))
                }
                self._entities[surrogate] = _Record(type_name, stripped)
                self.record_count += 1
                self.byte_size += encoded_size(stripped)
        self._load_links(db, "brep_face", "brep", "faces")
        self._load_links(db, "face_edge", "face", "border")
        self._load_links(db, "edge_point", "edge", "boundary")

    def _load_links(self, db: Prima, link_kind: str, owner_type: str,
                    attr: str) -> None:
        links = self._links.setdefault(link_kind, [])
        for owner, values in db.access.atoms.atoms_of_type(owner_type):
            for member in values.get(attr) or []:
                links.append((owner, member))
                self.record_count += 1
                self.link_record_count += 1
                # A CODASYL link record: two pointers plus set chains.
                self.byte_size += 16

    # -- traversals ---------------------------------------------------------------------

    def members_of(self, link_kind: str,
                   owner: Surrogate) -> tuple[list[Surrogate], int]:
        """(members, records touched): owner -> link records -> members."""
        touched = 0
        members: list[Surrogate] = []
        for link_owner, member in self._links.get(link_kind, []):
            touched += 1                      # walking the set chain
            if link_owner == owner:
                members.append(member)
                touched += 1                  # fetching the member record
        return members, touched

    def owners_of(self, link_kind: str,
                  member: Surrogate) -> tuple[list[Surrogate], int]:
        """(owners, records touched): symmetric reverse traversal, again
        through the link records."""
        touched = 0
        owners: list[Surrogate] = []
        for owner, link_member in self._links.get(link_kind, []):
            touched += 1
            if link_member == member:
                owners.append(owner)
                touched += 1
        return owners, touched

    def faces_of_point(self, point: Surrogate) -> tuple[set[Surrogate], int]:
        """point -> edges -> faces through two link-record sets."""
        edges, touched1 = self.owners_of("edge_point", point)
        faces: set[Surrogate] = set()
        touched = touched1
        for edge in edges:
            edge_faces, t = self.owners_of("face_edge", edge)
            faces.update(edge_faces)
            touched += t
        return faces, touched

    def counts_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for record in self._entities.values():
            out[record.kind] = out.get(record.kind, 0) + 1
        for kind, links in self._links.items():
            out[f"link:{kind}"] = len(links)
        return out
