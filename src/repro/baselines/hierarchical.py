"""The hierarchical (IMS-like) baseline of Fig. 2.1.

Modeling BREP hierarchically forces each shared component under every
parent: every face stores its *own copies* of its border edges, and every
edge copy stores its own copies of its endpoints.  "A substantial portion
of redundancy is introduced: there are several independent representations
for every edge and every point.  Since the DBMS is not aware of this
redundancy, it must be handled by the application" (paper, 2.1).

The store measures exactly the quantities the figure argues about:

* ``record_count`` / ``byte_size`` — the redundancy overhead,
* ``reverse_traversal_cost`` — finding the faces of a point requires a
  full scan of the hierarchy (no upward pointers), while MAD follows the
  symmetric back-references directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.access.encoding import encoded_size
from repro.db import Prima
from repro.mad.types import Surrogate


@dataclass
class _Segment:
    """One hierarchical segment occurrence (IMS terminology)."""

    kind: str
    values: dict[str, Any]
    children: list["_Segment"] = field(default_factory=list)


class HierarchicalStore:
    """brep → face → edge → point with physical copies at every level."""

    def __init__(self) -> None:
        self._roots: list[_Segment] = []
        self.record_count = 0
        self.byte_size = 0

    # -- loading -------------------------------------------------------------------

    def load_from_prima(self, db: Prima) -> None:
        """Replicate every brep molecule of ``db`` hierarchically."""
        result = db.query("SELECT ALL FROM brep-face-edge-point")
        for molecule in result:
            root = self._segment("brep", _strip(molecule.atom))
            self._roots.append(root)
            for face in molecule.component_list("face"):
                face_seg = self._segment("face", _strip(face.atom))
                root.children.append(face_seg)
                for edge in face.component_list("edge"):
                    edge_seg = self._segment("edge", _strip(edge.atom))
                    face_seg.children.append(edge_seg)
                    for point in edge.component_list("point"):
                        # A fresh copy per occurrence: THE redundancy.
                        edge_seg.children.append(
                            self._segment("point", _strip(point.atom))
                        )

    def _segment(self, kind: str, values: dict[str, Any]) -> _Segment:
        self.record_count += 1
        self.byte_size += encoded_size(values)
        return _Segment(kind, values)

    # -- metrics -----------------------------------------------------------------------

    def counts_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}

        def visit(segment: _Segment) -> None:
            out[segment.kind] = out.get(segment.kind, 0) + 1
            for child in segment.children:
                visit(child)

        for root in self._roots:
            visit(root)
        return out

    # -- traversals ---------------------------------------------------------------------

    def downward_traversal(self, brep_no: int) -> tuple[int, int]:
        """faces→edges→points of one brep: (atoms delivered, records
        touched) — the direction hierarchies are good at."""
        touched = 0
        delivered = 0
        for root in self._roots:
            touched += 1
            if root.values.get("brep_no") != brep_no:
                continue

            def visit(segment: _Segment) -> None:
                nonlocal touched, delivered
                for child in segment.children:
                    touched += 1
                    delivered += 1
                    visit(child)

            visit(root)
        return delivered, touched

    def reverse_traversal_cost(self, x: float, y: float, z: float) -> tuple[int, int]:
        """Faces containing the point at (x,y,z): (faces found, records
        touched).  Without upward pointers the whole database is scanned,
        and the answer is assembled from redundant copies."""
        touched = 0
        faces: set[int] = set()

        def visit(segment: _Segment, face_id: int | None) -> None:
            nonlocal touched
            touched += 1
            if segment.kind == "face":
                face_id = id(segment)
            if segment.kind == "point":
                placement = segment.values.get("placement") or {}
                if (placement.get("x_coord"), placement.get("y_coord"),
                        placement.get("z_coord")) == (x, y, z):
                    if face_id is not None:
                        faces.add(face_id)
            for child in segment.children:
                visit(child, face_id)

        for root in self._roots:
            visit(root, None)
        return len(faces), touched


def _strip(atom: dict[str, Any]) -> dict[str, Any]:
    """Drop surrogate-valued attributes: the hierarchical model has no
    references — containment is physical."""
    out: dict[str, Any] = {}
    for name, value in atom.items():
        if isinstance(value, Surrogate):
            continue
        if isinstance(value, list) and value and \
                isinstance(value[0], Surrogate):
            continue
        out[name] = value
    return out
