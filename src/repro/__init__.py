"""PRIMA reproduction: a DBMS kernel implementing the Molecule-Atom Data
model (Härder, Meyer-Wegener, Mitschang, Sikeler — VLDB 1987).

Quickstart::

    import repro

    with repro.connect() as conn:
        conn.execute("CREATE ATOM_TYPE city (city_id: IDENTIFIER, "
                     "name: CHAR_VAR) KEYS_ARE (name)")
        conn.execute("INSERT city (name = 'Brighton')")
        for molecule in conn.query("SELECT ALL FROM city"):
            print(molecule.atom)

:func:`connect` is the one client entry point: the same
:class:`~repro.serve.Connection` API serves an in-process instance
(``connect()``, ``connect(db)``), an existing session manager, or an
asyncio daemon over a socket (``connect("prima://host:port")``).  The
embedded :class:`Prima` façade remains available for direct,
sessionless engine access.

Package map (one subpackage per layer of Fig. 3.1):

* :mod:`repro.storage`  — segments, five page sizes, buffer, page sequences
* :mod:`repro.access`   — atoms, back-references, tuning structures, scans
* :mod:`repro.mad`      — the Molecule-Atom Data model objects
* :mod:`repro.mql`      — the Molecule Query Language front end
  (SELECT ... ORDER BY ... LIMIT n [OFFSET m], DDL, DML)
* :mod:`repro.data`     — validation, planning, and the streaming
  execution pipeline: plans compile into the Volcano-style operator tree
  of :mod:`repro.data.operators` (RootScan → MoleculeConstruct →
  ResidualFilter → Sort → Offset/Limit → Project); ``select()`` returns
  a lazy :class:`ResultSet` cursor over that pipeline
* :mod:`repro.ldl`      — the load definition language
* :mod:`repro.txn`      — nested transactions
* :mod:`repro.parallel` — semantic parallelism on a simulated multiprocessor
* :mod:`repro.shard`    — sharded scale-out: a partitioned engine cluster
  with routed and scatter-gather query execution
* :mod:`repro.coupling` — workstation-host checkout/checkin
* :mod:`repro.workloads`— BREP / VLSI / GIS generators
* :mod:`repro.baselines`— hierarchical and network stores (Fig. 2.1)
"""

from repro.data.prepared import PreparedStatement
from repro.data.result import ResultSet
from repro.db import Prima
from repro.errors import PrimaError
from repro.mad.molecule import Molecule
from repro.mad.types import Surrogate
from repro.serve.connection import Connection, connect
from repro.shard import ShardedCluster, ShardRouter

__version__ = "1.0.0"

__all__ = [
    "Connection",
    "Molecule",
    "PreparedStatement",
    "Prima",
    "PrimaError",
    "ResultSet",
    "ShardRouter",
    "ShardedCluster",
    "Surrogate",
    "__version__",
    "connect",
]
