"""PRIMA reproduction: a DBMS kernel implementing the Molecule-Atom Data
model (Härder, Meyer-Wegener, Mitschang, Sikeler — VLDB 1987).

Quickstart::

    from repro import Prima

    db = Prima()
    db.execute("CREATE ATOM_TYPE city (city_id: IDENTIFIER, "
               "name: CHAR_VAR) KEYS_ARE (name)")
    db.execute("INSERT city (name = 'Brighton')")
    for molecule in db.query("SELECT ALL FROM city"):
        print(molecule.atom)

Package map (one subpackage per layer of Fig. 3.1):

* :mod:`repro.storage`  — segments, five page sizes, buffer, page sequences
* :mod:`repro.access`   — atoms, back-references, tuning structures, scans
* :mod:`repro.mad`      — the Molecule-Atom Data model objects
* :mod:`repro.mql`      — the Molecule Query Language front end
  (SELECT ... ORDER BY ... LIMIT n [OFFSET m], DDL, DML)
* :mod:`repro.data`     — validation, planning, and the streaming
  execution pipeline: plans compile into the Volcano-style operator tree
  of :mod:`repro.data.operators` (RootScan → MoleculeConstruct →
  ResidualFilter → Sort → Offset/Limit → Project); ``select()`` returns
  a lazy :class:`ResultSet` cursor over that pipeline
* :mod:`repro.ldl`      — the load definition language
* :mod:`repro.txn`      — nested transactions
* :mod:`repro.parallel` — semantic parallelism on a simulated multiprocessor
* :mod:`repro.coupling` — workstation-host checkout/checkin
* :mod:`repro.workloads`— BREP / VLSI / GIS generators
* :mod:`repro.baselines`— hierarchical and network stores (Fig. 2.1)
"""

from repro.data.prepared import PreparedStatement
from repro.data.result import ResultSet
from repro.db import Prima
from repro.errors import PrimaError
from repro.mad.molecule import Molecule
from repro.mad.types import Surrogate

__version__ = "1.0.0"

__all__ = [
    "Molecule",
    "PreparedStatement",
    "Prima",
    "PrimaError",
    "ResultSet",
    "Surrogate",
    "__version__",
]
