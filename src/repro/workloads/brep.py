"""BREP workload: 3D solids in boundary representation (paper, Fig. 2.1/2.3).

Generates databases against the *exact* schema of Fig. 2.3 — five atom
types (solid, brep, face, edge, point) with the paper's association types
and cardinality restrictions, plus the four molecule type definitions of
Fig. 2.3c.  Every generated solid is a box (cuboid): 1 brep, 6 faces, 12
edges, 8 points, with the full n:m meshing (each edge borders 2 faces,
each point joins 3 edges and 3 faces).

The generator plants the keys the Table 2.1 queries use verbatim:
``brep_no = 1713`` (first brep) and ``solid_no = 4711`` (first root solid
of the assembly hierarchy), and builds a recursive sub/super assembly tree
over the solids so ``piece_list`` molecules are non-trivial.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.db import Prima
from repro.mad.types import Surrogate

#: The Fig. 2.3 schema, verbatim modulo OCR repairs.
FIG_2_3_DDL = """
CREATE ATOM_TYPE solid
( solid_id    : IDENTIFIER,
  solid_no    : INTEGER,
  description : CHAR_VAR,
  sub         : SET_OF (REF_TO (solid.super)),
  super       : SET_OF (REF_TO (solid.sub)),
  brep        : REF_TO (brep.solid) )
KEYS_ARE (solid_no);

CREATE ATOM_TYPE brep
( brep_id : IDENTIFIER,
  brep_no : INTEGER,
  hull    : HULL_DIM (3),
  solid   : REF_TO (solid.brep),
  faces   : SET_OF (REF_TO (face.brep)) (4,VAR),
  edges   : SET_OF (REF_TO (edge.brep)) (6,VAR),
  points  : SET_OF (REF_TO (point.brep)) (4,VAR) )
KEYS_ARE (brep_no);

CREATE ATOM_TYPE face
( face_id    : IDENTIFIER,
  square_dim : REAL,
  border     : SET_OF (REF_TO (edge.face)) (3,VAR),
  crosspoint : SET_OF (REF_TO (point.face)) (3,VAR),
  brep       : REF_TO (brep.faces) );

CREATE ATOM_TYPE edge
( edge_id  : IDENTIFIER,
  length   : REAL,
  boundary : SET_OF (REF_TO (point.line)) (2,VAR),
  face     : SET_OF (REF_TO (face.border)) (2,VAR),
  brep     : REF_TO (brep.edges) );

CREATE ATOM_TYPE point
( point_id  : IDENTIFIER,
  placement : RECORD x_coord, y_coord, z_coord : REAL, END,
  line      : SET_OF (REF_TO (edge.boundary)) (1,VAR),
  face      : SET_OF (REF_TO (face.crosspoint)) (1,VAR),
  brep      : REF_TO (brep.points) )
"""

#: The molecule type definitions of Fig. 2.3c, verbatim.
FIG_2_3_MOLECULE_TYPES = """
DEFINE MOLECULE TYPE edge_obj  FROM edge - point;
DEFINE MOLECULE TYPE face_obj  FROM face - edge_obj;
DEFINE MOLECULE TYPE brep_obj  FROM brep - face_obj;
DEFINE MOLECULE TYPE piece_list FROM solid.sub - solid (RECURSIVE)
"""

#: The box topology: 8 corners, 12 edges (corner index pairs), 6 faces
#: (edge index quadruples).
_CORNERS = [(x, y, z) for z in (0.0, 1.0) for y in (0.0, 1.0)
            for x in (0.0, 1.0)]
_EDGES = [
    (0, 1), (1, 3), (3, 2), (2, 0),          # bottom ring
    (4, 5), (5, 7), (7, 6), (6, 4),          # top ring
    (0, 4), (1, 5), (3, 7), (2, 6),          # verticals
]
_FACES = [
    (0, 1, 2, 3),      # bottom
    (4, 5, 6, 7),      # top
    (0, 9, 4, 8),      # front
    (2, 11, 6, 10),    # back
    (3, 8, 7, 11),     # left
    (1, 10, 5, 9),     # right
]

#: Keys planted for the Table 2.1 queries.
TABLE_2_1_BREP_NO = 1713
TABLE_2_1_SOLID_NO = 4711


@dataclass
class BrepDatabase:
    """Handles to a generated BREP database."""

    db: Prima
    solids: list[Surrogate] = field(default_factory=list)
    breps: list[Surrogate] = field(default_factory=list)
    faces: list[Surrogate] = field(default_factory=list)
    edges: list[Surrogate] = field(default_factory=list)
    points: list[Surrogate] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        return {
            "solid": len(self.solids),
            "brep": len(self.breps),
            "face": len(self.faces),
            "edge": len(self.edges),
            "point": len(self.points),
        }


def install_schema(db: Prima, molecule_types: bool = True) -> None:
    """Run the Fig. 2.3 DDL (and molecule type definitions) on ``db``."""
    db.execute_script(FIG_2_3_DDL)
    if molecule_types:
        db.execute_script(FIG_2_3_MOLECULE_TYPES)


def build_box(db: Prima, brep_no: int, origin: tuple[float, float, float],
              size: float, handles: BrepDatabase) -> Surrogate:
    """Insert one box solid (its brep, faces, edges, points); returns the
    *brep* surrogate.  The caller attaches it to a solid."""
    access = db.access
    ox, oy, oz = origin

    point_ids: list[Surrogate] = []
    for cx, cy, cz in _CORNERS:
        point_ids.append(access.insert("point", {
            "placement": {
                "x_coord": ox + cx * size,
                "y_coord": oy + cy * size,
                "z_coord": oz + cz * size,
            },
        }))
    edge_ids: list[Surrogate] = []
    for a, b in _EDGES:
        edge_ids.append(access.insert("edge", {
            "length": size,
            "boundary": [point_ids[a], point_ids[b]],
        }))
    face_ids: list[Surrogate] = []
    for quad in _FACES:
        border = [edge_ids[e] for e in quad]
        corner_set: list[Surrogate] = []
        for e in quad:
            for endpoint in _EDGES[e]:
                if point_ids[endpoint] not in corner_set:
                    corner_set.append(point_ids[endpoint])
        face_ids.append(access.insert("face", {
            "square_dim": size * size,
            "border": border,
            "crosspoint": corner_set,
        }))
    brep = access.insert("brep", {
        "brep_no": brep_no,
        "hull": [ox, oy, oz, ox + size, oy + size, oz + size],
        "faces": face_ids,
        "edges": edge_ids,
        "points": point_ids,
    })
    handles.breps.append(brep)
    handles.faces.extend(face_ids)
    handles.edges.extend(edge_ids)
    handles.points.extend(point_ids)
    return brep


def generate(db: Prima | None = None, n_solids: int = 8,
             assembly_fanout: int = 2, seed: int = 1987,
             molecule_types: bool = True) -> BrepDatabase:
    """Generate a BREP database of ``n_solids`` box solids.

    The solids form an assembly forest: consecutive groups of
    ``assembly_fanout`` solids become the sub-parts of a composite solid,
    recursively, giving the piece_list molecules real depth.  The first
    assembly root gets ``solid_no = 4711``; brep numbers count up from
    ``1713`` (Table 2.1 seeds).
    """
    if db is None:
        db = Prima()
    install_schema(db, molecule_types=molecule_types)
    rng = random.Random(seed)
    handles = BrepDatabase(db)
    access = db.access

    # Primitive solids, each with a full box BREP.
    primitive_nos = list(range(1, n_solids + 1))
    for index, solid_no in enumerate(primitive_nos):
        size = 1.0 + rng.random() * 9.0
        origin = (rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 100))
        brep = build_box(db, TABLE_2_1_BREP_NO + index, origin, size, handles)
        solid = access.insert("solid", {
            "solid_no": solid_no,
            "description": f"box solid {solid_no}",
            "brep": brep,
        })
        handles.solids.append(solid)

    # Assembly hierarchy: group primitives under composite solids.
    next_no = TABLE_2_1_SOLID_NO
    layer = list(handles.solids)
    while len(layer) > 1:
        next_layer: list[Surrogate] = []
        for start in range(0, len(layer), assembly_fanout):
            group = layer[start:start + assembly_fanout]
            if len(group) == 1:
                next_layer.append(group[0])
                continue
            composite = access.insert("solid", {
                "solid_no": next_no,
                "description": f"assembly {next_no}",
                "sub": group,
            })
            next_no += 1
            handles.solids.append(composite)
            next_layer.append(composite)
        layer = next_layer
    # The topmost assembly keeps solid_no 4711 only when it was created
    # first; re-number it explicitly so Table 2.1b always finds its seed.
    if layer and next_no != TABLE_2_1_SOLID_NO:
        root = layer[0]
        root_values = access.get(root)
        if root_values.get("sub"):
            current = root_values["solid_no"]
            if current != TABLE_2_1_SOLID_NO:
                holder = access.atoms.find_by_key("solid", TABLE_2_1_SOLID_NO)
                if holder is not None and holder != root:
                    access.modify(holder, {"solid_no": -int(current)})
                access.modify(root, {"solid_no": TABLE_2_1_SOLID_NO})
    db.commit()
    return handles
