"""Workload generators for the three investigated application areas
(paper, section 1): 3D solid modeling (BREP), VLSI circuit design, and
map handling in geographic information systems."""

from repro.workloads import brep, gis, vlsi

__all__ = ["brep", "gis", "vlsi"]
