"""VLSI circuit design workload (paper, section 1; [HHLM87]).

Schema: a classic netlist with a recursive cell hierarchy —

* ``cell`` — a circuit cell (NAND, NOR, ...); composite cells instantiate
  sub-cells over the n:m ``subcells``/``containers`` association
  (a standard cell is used by many composites);
* ``pin`` — a connection point owned by exactly one cell (1:n);
* ``net`` — an electrical net connecting many pins (1:n: a pin belongs to
  at most one net).

Typical molecule queries: the *netlist* (net-pin-cell, vertical access),
the *cell interface* (cell-pin), and the recursive *cell explosion*
(cell.subcells-cell (RECURSIVE)), which mirrors piece_list.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.db import Prima
from repro.mad.types import Surrogate

VLSI_DDL = """
CREATE ATOM_TYPE cell
( cell_id    : IDENTIFIER,
  cell_no    : INTEGER,
  function   : CHAR_VAR,
  area       : REAL,
  pins       : SET_OF (REF_TO (pin.cell)),
  subcells   : SET_OF (REF_TO (cell.containers)),
  containers : SET_OF (REF_TO (cell.subcells)) )
KEYS_ARE (cell_no);

CREATE ATOM_TYPE pin
( pin_id : IDENTIFIER,
  name   : CHAR_VAR,
  cell   : REF_TO (cell.pins),
  net    : REF_TO (net.pins) );

CREATE ATOM_TYPE net
( net_id   : IDENTIFIER,
  net_no   : INTEGER,
  signal   : CHAR_VAR,
  pins     : SET_OF (REF_TO (pin.net)) (2,VAR) )
KEYS_ARE (net_no);

DEFINE MOLECULE TYPE netlist FROM net - pin - cell;
DEFINE MOLECULE TYPE cell_interface FROM cell - pin;
DEFINE MOLECULE TYPE cell_explosion FROM cell.subcells - cell (RECURSIVE)
"""

_FUNCTIONS = ["NAND", "NOR", "INV", "XOR", "DFF", "MUX", "BUF", "AOI"]


@dataclass
class VlsiDatabase:
    """Handles to a generated VLSI database."""

    db: Prima
    cells: list[Surrogate] = field(default_factory=list)
    pins: list[Surrogate] = field(default_factory=list)
    nets: list[Surrogate] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        return {"cell": len(self.cells), "pin": len(self.pins),
                "net": len(self.nets)}


def generate(db: Prima | None = None, n_cells: int = 24,
             pins_per_cell: int = 4, n_nets: int = 16,
             composite_fanout: int = 4, seed: int = 1987) -> VlsiDatabase:
    """Generate a netlist database with a recursive cell hierarchy.

    ``n_cells`` standard cells each carry ``pins_per_cell`` pins; ``n_nets``
    nets connect 2-5 random unconnected pins; composites of
    ``composite_fanout`` cells stack up recursively.
    """
    if db is None:
        db = Prima()
    db.execute_script(VLSI_DDL)
    rng = random.Random(seed)
    handles = VlsiDatabase(db)
    access = db.access

    for cell_no in range(1, n_cells + 1):
        cell = access.insert("cell", {
            "cell_no": cell_no,
            "function": rng.choice(_FUNCTIONS),
            "area": round(rng.uniform(10.0, 500.0), 1),
        })
        handles.cells.append(cell)
        for pin_index in range(pins_per_cell):
            pin = access.insert("pin", {
                "name": f"p{pin_index}",
                "cell": cell,
            })
            handles.pins.append(pin)

    unconnected = list(handles.pins)
    rng.shuffle(unconnected)
    for net_no in range(1, n_nets + 1):
        width = min(rng.randint(2, 5), len(unconnected))
        if width < 2:
            break
        chosen = [unconnected.pop() for _ in range(width)]
        net = access.insert("net", {
            "net_no": net_no,
            "signal": f"sig_{net_no}",
            "pins": chosen,
        })
        handles.nets.append(net)

    # Recursive hierarchy: group standard cells under composites.
    next_no = n_cells + 1
    layer = list(handles.cells)
    while len(layer) > 1:
        next_layer: list[Surrogate] = []
        for start in range(0, len(layer), composite_fanout):
            group = layer[start:start + composite_fanout]
            if len(group) == 1:
                next_layer.append(group[0])
                continue
            composite = access.insert("cell", {
                "cell_no": next_no,
                "function": "COMPOSITE",
                "area": 0.0,
                "subcells": group,
            })
            next_no += 1
            handles.cells.append(composite)
            next_layer.append(composite)
        layer = next_layer
    db.commit()
    return handles


def top_cell_no(handles: VlsiDatabase) -> int | None:
    """cell_no of the topmost composite (None for flat designs)."""
    best: tuple[int, int] | None = None
    for cell in handles.cells:
        values = handles.db.access.get(cell)
        if values.get("subcells") and not values.get("containers"):
            number = values["cell_no"]
            if best is None or number > best[0]:
                best = (number, number)
    return best[0] if best is not None else None
