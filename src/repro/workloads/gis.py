"""Map handling / GIS workload (paper, section 1; [HHLM87]).

Schema: a planar map partition with **real n:m sharing** — the structures
the paper calls meshed:

* ``map`` — a map sheet grouping regions (n:m — border regions belong to
  two adjacent sheets);
* ``region`` — an areal feature bounded by border lines (n:m — interior
  lines separate exactly two regions, so almost every line is shared);
* ``line`` — a polyline bounded by two nodes;
* ``node`` — a junction point shared by up to four lines.

The generator lays out a ``rows × cols`` grid of square regions: every
interior grid line is shared by its two neighbouring regions — precisely
the non-disjoint molecule situation of [BB84].
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.db import Prima
from repro.mad.types import Surrogate

GIS_DDL = """
CREATE ATOM_TYPE map
( map_id  : IDENTIFIER,
  map_no  : INTEGER,
  title   : CHAR_VAR,
  regions : SET_OF (REF_TO (region.maps)) )
KEYS_ARE (map_no);

CREATE ATOM_TYPE region
( region_id : IDENTIFIER,
  region_no : INTEGER,
  land_use  : CHAR_VAR,
  area      : REAL,
  maps      : SET_OF (REF_TO (map.regions)),
  border    : SET_OF (REF_TO (line.regions)) (3,VAR) )
KEYS_ARE (region_no);

CREATE ATOM_TYPE line
( line_id : IDENTIFIER,
  length  : REAL,
  regions : SET_OF (REF_TO (region.border)) (1,2),
  nodes   : SET_OF (REF_TO (node.lines)) (2,2) );

CREATE ATOM_TYPE node
( node_id : IDENTIFIER,
  x, y    : REAL,
  lines   : SET_OF (REF_TO (line.nodes)) (1,4) );

DEFINE MOLECULE TYPE map_sheet   FROM map - region - line - node;
DEFINE MOLECULE TYPE region_obj  FROM region - line - node
"""

_LAND_USES = ["forest", "water", "urban", "farmland", "industrial", "park"]


@dataclass
class GisDatabase:
    """Handles to a generated map database."""

    db: Prima
    maps: list[Surrogate] = field(default_factory=list)
    regions: list[Surrogate] = field(default_factory=list)
    lines: list[Surrogate] = field(default_factory=list)
    nodes: list[Surrogate] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        return {"map": len(self.maps), "region": len(self.regions),
                "line": len(self.lines), "node": len(self.nodes)}


def generate(db: Prima | None = None, rows: int = 4, cols: int = 4,
             sheets: int = 2, seed: int = 1987) -> GisDatabase:
    """Generate a ``rows × cols`` region grid split over ``sheets`` maps.

    Interior lines are shared by two regions (n:m), interior nodes by up
    to four lines; map sheets split the grid column-wise with the border
    column's regions assigned to *both* sheets (n:m map-region).
    """
    if db is None:
        db = Prima()
    db.execute_script(GIS_DDL)
    rng = random.Random(seed)
    handles = GisDatabase(db)
    access = db.access

    # Nodes at grid corners.
    node_grid: dict[tuple[int, int], Surrogate] = {}
    for r in range(rows + 1):
        for c in range(cols + 1):
            node = access.insert("node", {"x": float(c), "y": float(r)})
            node_grid[(r, c)] = node
            handles.nodes.append(node)

    # Horizontal and vertical grid lines between adjacent nodes.
    h_lines: dict[tuple[int, int], Surrogate] = {}
    v_lines: dict[tuple[int, int], Surrogate] = {}
    for r in range(rows + 1):
        for c in range(cols):
            line = access.insert("line", {
                "length": 1.0,
                "nodes": [node_grid[(r, c)], node_grid[(r, c + 1)]],
            })
            h_lines[(r, c)] = line
            handles.lines.append(line)
    for r in range(rows):
        for c in range(cols + 1):
            line = access.insert("line", {
                "length": 1.0,
                "nodes": [node_grid[(r, c)], node_grid[(r + 1, c)]],
            })
            v_lines[(r, c)] = line
            handles.lines.append(line)

    # Regions: each grid square bounded by 4 lines; interior lines are
    # shared between neighbouring squares (the n:m meshing).
    region_grid: dict[tuple[int, int], Surrogate] = {}
    region_no = 1
    for r in range(rows):
        for c in range(cols):
            border = [h_lines[(r, c)], h_lines[(r + 1, c)],
                      v_lines[(r, c)], v_lines[(r, c + 1)]]
            region = access.insert("region", {
                "region_no": region_no,
                "land_use": rng.choice(_LAND_USES),
                "area": 1.0,
                "border": border,
            })
            region_grid[(r, c)] = region
            handles.regions.append(region)
            region_no += 1

    # Map sheets: column ranges with one overlapping border column.
    sheets = max(1, min(sheets, cols))
    per_sheet = max(1, cols // sheets)
    for sheet_no in range(1, sheets + 1):
        first = (sheet_no - 1) * per_sheet
        last = cols - 1 if sheet_no == sheets else first + per_sheet
        members = [
            region_grid[(r, c)]
            for r in range(rows)
            for c in range(max(0, first - (1 if sheet_no > 1 else 0)),
                           min(cols, last + 1))
        ]
        map_atom = access.insert("map", {
            "map_no": sheet_no,
            "title": f"sheet {sheet_no}",
            "regions": members,
        })
        handles.maps.append(map_atom)
    db.commit()
    return handles
