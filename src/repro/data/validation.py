"""Query validation and modification (paper, 3.1).

Checks the initial query for syntactic and semantic correctness, performs
the resolution of predefined molecule types, and resolves a meshed molecule
type into an equivalent hierarchical one which is easier to cope with.  The
output is the validated :class:`~repro.mad.molecule.StructureNode` tree the
planner works on.

Resolution rules:

* A FROM root naming a defined molecule type is replaced by that type's
  structure (Table 2.1b uses the predefined ``piece_list``).
* Every edge needs an association between parent and child atom types;
  when more than one exists the reference attribute must be named
  explicitly (``solid.sub-solid``), otherwise validation fails listing the
  candidates — this is the paper's "in case of ambiguity the reference
  attribute has to be denoted".
* Node labels default to the atom type name; duplicate types in one
  structure get numbered labels (``face``, ``face_2``) so paths stay
  unambiguous.  This numbering is the hierarchical resolution of meshed
  structures: an atom type reachable over two paths becomes two structure
  nodes.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ValidationError
from repro.mad.molecule import MoleculeType, StructureNode
from repro.mad.schema import Schema
from repro.mql.ast import (
    And,
    Comparison,
    EmptyLiteral,
    Expr,
    FromNode,
    Not,
    Or,
    Path,
    Projection,
    Quantified,
    SelectStatement,
)


class MoleculeTypeCatalog:
    """Named (pre-defined) molecule types: DEFINE MOLECULE TYPE results."""

    #: Monotonic stamp bumped on DEFINE/DROP (class-level default keeps
    #: old checkpoints loadable); part of the plan-cache version.
    version = 0

    def __init__(self) -> None:
        self._types: dict[str, MoleculeType] = {}
        self.version = 0

    def define(self, molecule_type: MoleculeType) -> None:
        if molecule_type.name in self._types:
            raise ValidationError(
                f"molecule type {molecule_type.name!r} already defined"
            )
        self._types[molecule_type.name] = molecule_type
        self.version = self.version + 1

    def drop(self, name: str) -> None:
        if name not in self._types:
            raise ValidationError(f"molecule type {name!r} is not defined")
        del self._types[name]
        self.version = self.version + 1

    def get(self, name: str) -> MoleculeType | None:
        return self._types.get(name)

    def names(self) -> list[str]:
        return sorted(self._types)


class Validator:
    """Resolves FROM clauses and checks paths against the structure."""

    def __init__(self, schema: Schema, catalog: MoleculeTypeCatalog) -> None:
        self._schema = schema
        self._catalog = catalog

    # -- structure resolution ---------------------------------------------------

    def resolve_structure(self, from_node: FromNode) -> StructureNode:
        """FROM clause -> validated, labelled StructureNode tree."""
        # Predefined molecule type at the root (no children allowed there).
        molecule_type = self._catalog.get(from_node.name)
        if molecule_type is not None:
            if from_node.children or from_node.via_attr:
                raise ValidationError(
                    f"{from_node.name!r} names a molecule type; it cannot "
                    f"be extended inline"
                )
            return _relabel_copy(molecule_type.root, _LabelAllocator(),
                                 rename_root=from_node.name)
        labels = _LabelAllocator()
        return self._resolve_node(from_node, parent=None, labels=labels)

    def _resolve_node(self, node: FromNode, parent: StructureNode | None,
                      labels: "_LabelAllocator") -> StructureNode:
        # An inner node may also name a predefined molecule type: graft it.
        molecule_type = self._catalog.get(node.name)
        if molecule_type is not None and parent is not None:
            grafted = _relabel_copy(molecule_type.root, labels)
            grafted.via = self._edge_association(
                parent, grafted.atom_type, node.via_attr
            )
            grafted.recursive = grafted.recursive or node.recursive
            for child in node.children:
                grafted.add_child(self._resolve_node(child, grafted, labels))
            return grafted

        if not self._schema.has_atom_type(node.name):
            known_mt = ", ".join(self._catalog.names()) or "none"
            raise ValidationError(
                f"{node.name!r} is neither an atom type nor a defined "
                f"molecule type (molecule types: {known_mt})"
            )
        resolved = StructureNode(
            atom_type=node.name,
            label=labels.allocate(node.name),
            recursive=node.recursive,
        )
        if parent is not None:
            resolved.via = self._edge_association(parent, node.name,
                                                  node.via_attr)
        elif node.recursive:
            raise ValidationError("the FROM root cannot be recursive")
        if node.recursive:
            if resolved.via is None or \
                    resolved.via.source_type != resolved.atom_type or \
                    resolved.via.target_type != resolved.atom_type:
                # recursion re-applies the incoming association; both ends
                # must be the same atom type (solid.sub -> solid).
                raise ValidationError(
                    f"recursive node {node.name!r} needs an association "
                    f"from {node.name!r} to itself"
                )
        for child in node.children:
            resolved.add_child(self._resolve_node(child, resolved, labels))
        return resolved

    def _edge_association(self, parent: StructureNode, child_type: str,
                          via_attr: str | None):
        if not self._schema.has_atom_type(child_type):
            raise ValidationError(f"unknown atom type {child_type!r}")
        if via_attr is not None:
            assoc = self._schema.association(parent.atom_type, via_attr)
            if assoc.target_type != child_type:
                raise ValidationError(
                    f"{parent.atom_type}.{via_attr} references "
                    f"{assoc.target_type!r}, not {child_type!r}"
                )
            return assoc
        candidates = self._schema.associations_between(parent.atom_type,
                                                       child_type)
        if not candidates:
            raise ValidationError(
                f"no association from {parent.atom_type!r} to "
                f"{child_type!r}; the molecule structure must follow "
                f"declared associations"
            )
        if len(candidates) > 1:
            attrs = ", ".join(a.source_attr for a in candidates)
            raise ValidationError(
                f"ambiguous association from {parent.atom_type!r} to "
                f"{child_type!r}: denote the reference attribute "
                f"({parent.atom_type}.{attrs})"
            )
        return candidates[0]

    # -- path validation ---------------------------------------------------------------

    def check_select(self, statement: SelectStatement,
                     structure: StructureNode) -> None:
        """Validate every path in projection and qualification."""
        self._check_projection(statement.projection, structure)
        if statement.where is not None:
            self._check_expr(statement.where, structure)

    def _check_projection(self, projection: Projection,
                          structure: StructureNode) -> None:
        if projection.select_all:
            return
        if not projection.items:
            raise ValidationError("empty projection list")
        for item in projection.items:
            if item.subquery is not None:
                label = item.label
                assert label is not None
                node = structure.find(label)
                if node is None:
                    raise ValidationError(
                        f"qualified projection on unknown label {label!r}"
                    )
                if item.subquery.from_clause.name not in (node.atom_type,
                                                          label):
                    raise ValidationError(
                        f"qualified projection of {label!r} must select "
                        f"FROM {node.atom_type!r}"
                    )
                for sub_item in item.subquery.projection.items:
                    if sub_item.subquery is not None:
                        raise ValidationError(
                            "nested qualified projections are not supported"
                        )
                    self._check_attr_of(node, sub_item.path)
                if item.subquery.where is not None:
                    self._check_expr_against_node(item.subquery.where, node)
                continue
            assert item.path is not None
            self.resolve_path(item.path, structure, allow_label_only=True)

    def _check_expr(self, expr: Expr, structure: StructureNode) -> None:
        if isinstance(expr, (And, Or)):
            for part in expr.parts:
                self._check_expr(part, structure)
        elif isinstance(expr, Not):
            self._check_expr(expr.inner, structure)
        elif isinstance(expr, Comparison):
            for side in (expr.left, expr.right):
                if isinstance(side, Path):
                    self.resolve_path(side, structure,
                                      allow_label_only=False)
        elif isinstance(expr, Quantified):
            node = structure.find(expr.label)
            if node is None:
                raise ValidationError(
                    f"quantifier over unknown label {expr.label!r}"
                )
            self._check_expr(expr.condition, structure)

    def _check_expr_against_node(self, expr: Expr,
                                 node: StructureNode) -> None:
        if isinstance(expr, (And, Or)):
            for part in expr.parts:
                self._check_expr_against_node(part, node)
        elif isinstance(expr, Not):
            self._check_expr_against_node(expr.inner, node)
        elif isinstance(expr, Comparison):
            for side in (expr.left, expr.right):
                if isinstance(side, Path):
                    self._check_attr_of(node, side)
        elif isinstance(expr, Quantified):
            raise ValidationError(
                "quantifiers are not allowed inside qualified projections"
            )

    def _check_attr_of(self, node: StructureNode, path: Path | None) -> None:
        if path is None:
            raise ValidationError("missing attribute path")
        attr = path.parts[-1] if len(path.parts) > 1 else path.parts[0]
        atom_type = self._schema.atom_type(node.atom_type)
        if attr not in atom_type.attributes:
            raise ValidationError(
                f"atom type {node.atom_type!r} has no attribute {attr!r}"
            )

    def resolve_path(self, path: Path, structure: StructureNode,
                     allow_label_only: bool) -> tuple[str, str | None]:
        """Resolve an attribute path against a structure (public: the
        projection operator and external tooling use it too).

        Returns (label, attr-or-None); raises on unknown names.

        Bare names resolve as: a structure label (whole subtree, when
        allowed), else an attribute of the root atom type.
        """
        first = path.parts[0]
        node = structure.find(first)
        if node is not None:
            if len(path.parts) == 1:
                if not allow_label_only:
                    raise ValidationError(
                        f"{first!r} names a structure component, not a value"
                    )
                return first, None
            attr = path.parts[1]
            atom_type = self._schema.atom_type(node.atom_type)
            if attr not in atom_type.attributes:
                raise ValidationError(
                    f"atom type {node.atom_type!r} has no attribute {attr!r}"
                )
            return first, attr
        # Bare attribute of the root.
        root_type = self._schema.atom_type(structure.atom_type)
        if first in root_type.attributes:
            return structure.label, first
        raise ValidationError(
            f"{first!r} is neither a component label nor an attribute of "
            f"{structure.atom_type!r}"
        )


class _LabelAllocator:
    """Hands out unique labels: type, type_2, type_3, ..."""

    def __init__(self) -> None:
        self._used: dict[str, int] = {}

    def allocate(self, base: str) -> str:
        count = self._used.get(base, 0) + 1
        self._used[base] = count
        return base if count == 1 else f"{base}_{count}"


def _relabel_copy(node: StructureNode, labels: _LabelAllocator,
                  rename_root: str | None = None) -> StructureNode:
    """Deep-copy a molecule type's structure with fresh labels.

    ``rename_root`` keeps the molecule type's *name* as the root label so
    seed qualifications like ``piece_list (0).solid_no`` resolve.
    """
    label = rename_root if rename_root is not None \
        else labels.allocate(node.atom_type)
    copy = StructureNode(
        atom_type=node.atom_type,
        label=label,
        via=node.via,
        recursive=node.recursive,
    )
    for child in node.children:
        copy.add_child(_relabel_copy(child, labels))
    return copy
