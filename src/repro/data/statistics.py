"""Meta-data statistics for the molecule-type-specific optimization.

Query preparation exploits "information from the meta-data" and the
molecule-type-specific optimization "has to be aware of access methods,
sort orders, partitions of atom types, and physical clusters" (paper,
3.1).  This module supplies the quantitative half of that awareness:

* per atom type — cardinality;
* per scalar attribute — min / max / distinct-estimate, collected by a
  single pass over the base containers;
* per association — average fan-out (how many components one parent
  contributes), which prices molecule construction.

Statistics are collected on demand (``ANALYZE``-style) and consumed by the
planner's selectivity estimator: a range predicate whose estimated
selectivity exceeds the scan threshold is answered by the atom-type scan
even when an access path exists — the crossover benchmark A5 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.access.btree import make_key
from repro.access.system import AccessSystem
from repro.mad.types import Surrogate, is_reference, reference_values


#: How many most-common values ANALYZE retains per attribute.  Only
#: values observed more than once qualify — a uniform column keeps no
#: MCV list and equality stays at the classic 1/distinct.
MCV_KEEP = 8


@dataclass
class AttributeStatistics:
    """Value distribution summary of one scalar attribute."""

    count: int = 0
    nulls: int = 0
    minimum: Any = None
    maximum: Any = None
    distinct: int = 0
    #: Most-common values: ``repr(value) -> occurrence count`` for the
    #: top :data:`MCV_KEEP` values with count >= 2.  Makes equality
    #: selectivity *value-aware*: a probe on a dominant value estimates
    #: its true fraction instead of the uniform 1/distinct, so the
    #: bind-time re-veto can demote an access path that equality would
    #: have kept under the uniform assumption.
    most_common: dict[str, int] = field(default_factory=dict)

    def _equality(self, value: Any) -> float:
        if not self.most_common:
            return 1.0 / max(self.distinct, 1)
        hit = self.most_common.get(repr(value))
        if hit is not None:
            return hit / max(self.count, 1)
        # Residual mass spread uniformly over the non-MCV values.
        mcv_mass = sum(self.most_common.values())
        rest_rows = max(self.count - self.nulls - mcv_mass, 0)
        rest_distinct = max(self.distinct - len(self.most_common), 1)
        return max(rest_rows / max(self.count, 1) / rest_distinct,
                   1e-9)

    def selectivity(self, op: str, value: Any) -> float:
        """Estimated fraction of atoms satisfying ``attr op value``.

        Equality consults the most-common-value list first (value-aware
        estimate) and falls back to 1/distinct; ranges interpolate
        linearly between the observed minimum and maximum for numeric
        attributes and fall back to 1/3 otherwise (the classic System R
        default).
        """
        if self.count == 0:
            return 0.0
        if op == "=":
            return self._equality(value)
        if op == "!=":
            return 1.0 - self._equality(value)
        if not isinstance(value, (int, float)) or \
                not isinstance(self.minimum, (int, float)) or \
                not isinstance(self.maximum, (int, float)) or \
                self.maximum == self.minimum:
            return 1.0 / 3.0
        span = self.maximum - self.minimum
        position = (value - self.minimum) / span
        position = min(max(position, 0.0), 1.0)
        if op in ("<", "<="):
            return position
        if op in (">", ">="):
            return 1.0 - position
        return 1.0 / 3.0


@dataclass
class TypeStatistics:
    """Statistics of one atom type."""

    cardinality: int = 0
    attributes: dict[str, AttributeStatistics] = field(default_factory=dict)
    #: reference attribute -> average number of targets per atom.
    fanout: dict[str, float] = field(default_factory=dict)


class StatisticsCatalog:
    """Collects and serves meta-data statistics (ANALYZE on demand)."""

    def __init__(self, access: AccessSystem) -> None:
        self._access = access
        self._types: dict[str, TypeStatistics] = {}

    # -- collection ----------------------------------------------------------------

    def analyze(self, type_name: str | None = None) -> int:
        """Collect statistics for one atom type (or every type); returns
        the number of atoms examined."""
        names = ([type_name] if type_name is not None
                 else self._access.schema.atom_type_names())
        examined = 0
        for name in names:
            examined += self._analyze_one(name)
        return examined

    def _analyze_one(self, type_name: str) -> int:
        atom_type = self._access.schema.atom_type(type_name)
        stats = TypeStatistics()
        #: Per attribute: repr(value) -> occurrence count (capped at
        #: 10k tracked values — distinct stays an *estimate* beyond).
        counts: dict[str, dict[str, int]] = {
            a: {} for a in atom_type.data_attrs()
        }
        ref_totals: dict[str, int] = {
            a: 0 for a in atom_type.reference_attrs()
        }
        for _s, values in self._access.atoms.atoms_of_type(type_name):
            stats.cardinality += 1
            for attr in counts:
                column = stats.attributes.setdefault(
                    attr, AttributeStatistics())
                value = values.get(attr)
                column.count += 1
                if value is None:
                    column.nulls += 1
                    continue
                try:
                    key = make_key(value)
                except Exception:
                    continue   # RECORD/ARRAY values carry no order stats
                if column.minimum is None or key < make_key(column.minimum):
                    column.minimum = value
                if column.maximum is None or make_key(column.maximum) < key:
                    column.maximum = value
                seen = counts[attr]
                marker = repr(value)
                if marker in seen:
                    seen[marker] += 1
                elif len(seen) < 10_000:
                    seen[marker] = 1
            for attr in ref_totals:
                ref_totals[attr] += len(reference_values(
                    atom_type.attr(attr), values.get(attr)))
        for attr, seen in counts.items():
            if attr in stats.attributes:
                column = stats.attributes[attr]
                column.distinct = len(seen)
                # Keep the top MCV_KEEP genuinely repeated values — a
                # uniform column keeps none (equality stays 1/distinct).
                repeated = sorted(
                    ((marker, n) for marker, n in seen.items() if n >= 2),
                    key=lambda item: (-item[1], item[0]))
                column.most_common = dict(repeated[:MCV_KEEP])
        if stats.cardinality:
            stats.fanout = {
                attr: total / stats.cardinality
                for attr, total in ref_totals.items()
            }
        self._types[type_name] = stats
        return stats.cardinality

    # -- queries the planner asks --------------------------------------------------------

    def has_statistics(self, type_name: str) -> bool:
        return type_name in self._types

    def type_statistics(self, type_name: str) -> TypeStatistics | None:
        return self._types.get(type_name)

    def cardinality(self, type_name: str) -> int | None:
        stats = self._types.get(type_name)
        return stats.cardinality if stats is not None else None

    def selectivity(self, type_name: str,
                    terms: list[tuple[str, str, Any]]) -> float | None:
        """Combined selectivity of conjunctive sargable terms (independence
        assumption); None without statistics."""
        stats = self._types.get(type_name)
        if stats is None:
            return None
        result = 1.0
        for attr, op, value in terms:
            column = stats.attributes.get(attr)
            if column is None:
                continue
            result *= column.selectivity(op, value)
        return result

    def estimated_molecule_size(self, structure) -> float:
        """Expected atoms per molecule of a structure (fan-out product).

        Used to price molecule construction ("the molecule-type-specific
        optimization"); recursion contributes its fan-out geometrically,
        capped at the type's cardinality.
        """
        def expected(node) -> float:
            stats = self._types.get(node.atom_type)
            total = 1.0
            for child in node.children:
                fanout = 1.0
                if stats is not None and child.via is not None:
                    fanout = stats.fanout.get(child.via.source_attr, 1.0)
                total += fanout * expected(child)
            if node.recursive and node.via is not None and \
                    stats is not None:
                fanout = stats.fanout.get(node.via.source_attr, 0.0)
                # geometric series sum for fanout < 1, else cap at card.
                if fanout < 1.0:
                    total *= 1.0 / max(1.0 - fanout, 1e-6)
                else:
                    total = float(stats.cardinality or total)
            return total

        return expected(structure)
