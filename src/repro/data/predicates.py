"""Qualification evaluation over molecules (the WHERE machinery).

Semantics, following the paper's examples:

* A bare attribute path (``brep_no``) reads the root atom.
* A labelled path (``edge.length``) ranges over the component atoms with
  that label; without an explicit quantifier a comparison over such a path
  holds when **some** component satisfies it (existential reading).
* ``EXISTS_AT_LEAST (n) label: cond`` / ``EXISTS_EXACTLY`` / ``FOR_ALL`` /
  ``EXISTS`` quantify explicitly over the components with the label
  (Table 2.1d).
* ``attr = EMPTY`` holds for an empty repeating group or a NULL reference
  (Table 2.1c: ``WHERE sub = EMPTY``).
* Recursion levels: ``label (n).attr`` addresses the atoms exactly ``n``
  recursion steps below the root (``piece_list (0).solid_no`` is the seed
  qualification of Table 2.1b).
* RECORD fields are addressed by continued dotted paths
  (``point.placement.x_coord``).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.access.btree import make_key
from repro.errors import ExecutionError
from repro.mad.molecule import Molecule
from repro.mad.types import Surrogate
from repro.mql.ast import (
    And,
    Comparison,
    EmptyLiteral,
    Expr,
    Literal,
    Not,
    Or,
    Parameter,
    Path,
    Quantified,
    RefLookup,
)


class PredicateEvaluator:
    """Evaluates qualification expressions against one molecule."""

    def __init__(self, resolve_ref=None) -> None:
        #: Callback (type_name, key) -> Surrogate for REF lookups.
        self._resolve_ref = resolve_ref

    # -- public API -----------------------------------------------------------------

    def matches(self, expr: Expr, molecule: Molecule) -> bool:
        return self._eval(expr, molecule)

    # -- expression walk --------------------------------------------------------------

    def _eval(self, expr: Expr, molecule: Molecule) -> bool:
        if isinstance(expr, And):
            return all(self._eval(part, molecule) for part in expr.parts)
        if isinstance(expr, Or):
            return any(self._eval(part, molecule) for part in expr.parts)
        if isinstance(expr, Not):
            return not self._eval(expr.inner, molecule)
        if isinstance(expr, Quantified):
            return self._eval_quantified(expr, molecule)
        if isinstance(expr, Comparison):
            return self._eval_comparison(expr, molecule)
        raise ExecutionError(f"cannot evaluate {expr!r} as a condition")

    def _eval_quantified(self, expr: Quantified, molecule: Molecule) -> bool:
        components = list(_components_with_label(molecule, expr.label))
        hits = sum(
            1 for comp in components if self._eval(expr.condition, comp)
        )
        if expr.quantifier == "exists":
            return hits >= 1
        if expr.quantifier == "at_least":
            assert expr.count is not None
            return hits >= expr.count
        if expr.quantifier == "exactly":
            assert expr.count is not None
            return hits == expr.count
        if expr.quantifier == "all":
            return hits == len(components)
        raise ExecutionError(f"unknown quantifier {expr.quantifier!r}")

    def _eval_comparison(self, expr: Comparison, molecule: Molecule) -> bool:
        left_values = self._operand_values(expr.left, molecule)
        right_values = self._operand_values(expr.right, molecule)
        # EMPTY comparisons: emptiness of the single addressed value.
        if isinstance(expr.right, EmptyLiteral):
            return all(_check_empty(expr.op, v) for v in left_values) \
                if left_values else expr.op == "="
        if isinstance(expr.left, EmptyLiteral):
            return all(_check_empty(expr.op, v) for v in right_values) \
                if right_values else expr.op == "="
        # Existential reading over multi-valued paths.
        for left in left_values:
            for right in right_values:
                if _compare(expr.op, left, right):
                    return True
        return False

    def _operand_values(self, operand: Expr, molecule: Molecule) -> list[Any]:
        if isinstance(operand, Literal):
            return [operand.value]
        if isinstance(operand, EmptyLiteral):
            return [operand]
        if isinstance(operand, RefLookup):
            if self._resolve_ref is None:
                raise ExecutionError("REF lookups are not available here")
            surrogate = self._resolve_ref(operand.type_name, operand.key)
            if surrogate is None:
                raise ExecutionError(
                    f"REF {operand.type_name}({operand.key}) matches no atom"
                )
            return [surrogate]
        if isinstance(operand, Path):
            return list(path_values(operand, molecule))
        if isinstance(operand, Parameter):
            raise ExecutionError(
                f"placeholder {operand.render()} is unbound at evaluation "
                f"time — execute through a prepared statement with bindings "
                f"(see repro.data.prepared)"
            )
        raise ExecutionError(f"cannot evaluate operand {operand!r}")


# ---------------------------------------------------------------------------
# Parameter binding: substituting placeholders in qualification expressions
# ---------------------------------------------------------------------------

def bind_expr(expr: Expr | None,
              resolve: Callable[[Parameter], Any]) -> Expr | None:
    """Substitute every :class:`~repro.mql.ast.Parameter` in ``expr``.

    Returns a new expression tree with each placeholder replaced by
    ``Literal(resolve(parameter))``; subtrees without parameters are
    shared, not copied, so binding a mostly-literal qualification is
    cheap and never mutates the (possibly cached, shared) template.
    REF lookup keys are bound too.  ``None`` passes through.
    """
    if expr is None:
        return None
    if isinstance(expr, Parameter):
        return Literal(resolve(expr))
    if isinstance(expr, Comparison):
        left = bind_expr(expr.left, resolve)
        right = bind_expr(expr.right, resolve)
        if left is expr.left and right is expr.right:
            return expr
        return Comparison(expr.op, left, right)
    if isinstance(expr, And):
        parts = [bind_expr(part, resolve) for part in expr.parts]
        if all(new is old for new, old in zip(parts, expr.parts)):
            return expr
        return And(parts)
    if isinstance(expr, Or):
        parts = [bind_expr(part, resolve) for part in expr.parts]
        if all(new is old for new, old in zip(parts, expr.parts)):
            return expr
        return Or(parts)
    if isinstance(expr, Not):
        inner = bind_expr(expr.inner, resolve)
        return expr if inner is expr.inner else Not(inner)
    if isinstance(expr, Quantified):
        condition = bind_expr(expr.condition, resolve)
        if condition is expr.condition:
            return expr
        return Quantified(expr.quantifier, expr.count, expr.label, condition)
    if isinstance(expr, RefLookup):
        if not any(isinstance(part, Parameter) for part in expr.key):
            return expr
        key = tuple(resolve(part) if isinstance(part, Parameter) else part
                    for part in expr.key)
        return RefLookup(expr.type_name, key)
    return expr


# ---------------------------------------------------------------------------
# Path resolution over molecules
# ---------------------------------------------------------------------------

def _components_with_label(molecule: Molecule,
                           label: str) -> Iterator[Molecule]:
    """All component molecules (at any depth) carrying ``label``."""
    if molecule.node.label == label:
        yield molecule
    for comps in molecule.components.values():
        for comp in comps:
            yield from _components_with_label(comp, label)


def _atoms_at_level(molecule: Molecule, level: int) -> Iterator[Molecule]:
    """Molecules exactly ``level`` recursion/nesting steps below the root."""
    if level == 0:
        yield molecule
        return
    for comps in molecule.components.values():
        for comp in comps:
            yield from _atoms_at_level(comp, level - 1)


def path_values(path: Path, molecule: Molecule) -> Iterator[Any]:
    """All values the path denotes within the molecule."""
    first = path.parts[0]
    if path.level is not None:
        if first != molecule.node.label:
            # level-indexed paths address the (recursive) root label
            matches = list(_components_with_label(molecule, first))
        else:
            matches = [molecule]
        targets: list[Molecule] = []
        for match in matches:
            targets.extend(_atoms_at_level(match, path.level))
        attr_parts = path.parts[1:]
        for target in targets:
            yield from _dig(target.atom, attr_parts)
        return
    if first == molecule.node.label:
        yield from _dig(molecule.atom, path.parts[1:])
        return
    component_matches = list(_components_with_label(molecule, first))
    if component_matches:
        for comp in component_matches:
            yield from _dig(comp.atom, path.parts[1:])
        return
    # Bare attribute of the root atom.
    yield from _dig(molecule.atom, path.parts)


def _dig(atom: dict[str, Any], parts: tuple[str, ...]) -> Iterator[Any]:
    """Follow attribute / record-field parts inside one atom dict."""
    if not parts:
        yield atom
        return
    current: Any = atom
    for part in parts:
        if isinstance(current, dict) and part in current:
            current = current[part]
        else:
            return
    yield current


# ---------------------------------------------------------------------------
# Scalar comparison
# ---------------------------------------------------------------------------

def _compare(op: str, left: Any, right: Any) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if left is None or right is None:
        return False
    try:
        lk, rk = make_key(left), make_key(right)
    except Exception:
        return False
    if op == "<":
        return lk < rk
    if op == "<=":
        return lk <= rk
    if op == ">":
        return rk < lk
    if op == ">=":
        return rk <= lk
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _check_empty(op: str, value: Any) -> bool:
    is_empty = value is None or value == [] or value == ()
    if op == "=":
        return is_empty
    if op == "!=":
        return not is_empty
    raise ExecutionError("EMPTY supports only = and != comparisons")
