"""Query simplification (paper, 3.1).

The query simplification step transforms the qualification into a normal
form the planner can exploit: NOTs are pushed inward (De Morgan), nested
ANDs/ORs are flattened, constant subexpressions are folded, and the
top-level conjuncts are exposed so the planner can pick off sargable root
predicates ("qualifications pushed down for efficiency reasons").
"""

from __future__ import annotations

from typing import Any

from repro.mql.ast import (
    And,
    Comparison,
    EmptyLiteral,
    Expr,
    Literal,
    Not,
    Or,
    Parameter,
    Path,
    Quantified,
)

_NEGATED_OP = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def simplify(expr: Expr | None) -> Expr | None:
    """Normalise a qualification expression (None passes through)."""
    if expr is None:
        return None
    return _flatten(_push_not(expr, negate=False))


def _push_not(expr: Expr, negate: bool) -> Expr:
    if isinstance(expr, Not):
        return _push_not(expr.inner, not negate)
    if isinstance(expr, And):
        parts = [_push_not(p, negate) for p in expr.parts]
        return Or(parts) if negate else And(parts)
    if isinstance(expr, Or):
        parts = [_push_not(p, negate) for p in expr.parts]
        return And(parts) if negate else Or(parts)
    if isinstance(expr, Comparison) and negate:
        return Comparison(_NEGATED_OP[expr.op], expr.left, expr.right)
    if isinstance(expr, Quantified):
        inner = _push_not(expr.condition, negate=False)
        fixed = Quantified(expr.quantifier, expr.count, expr.label, inner)
        return Not(fixed) if negate else fixed
    return Not(expr) if negate else expr


def _flatten(expr: Expr) -> Expr:
    if isinstance(expr, And):
        parts: list[Expr] = []
        for part in expr.parts:
            flat = _flatten(part)
            if isinstance(flat, And):
                parts.extend(flat.parts)
            elif isinstance(flat, Literal) and flat.value is True:
                continue
            else:
                parts.append(flat)
        if not parts:
            return Literal(True)
        return parts[0] if len(parts) == 1 else And(parts)
    if isinstance(expr, Or):
        parts = []
        for part in expr.parts:
            flat = _flatten(part)
            if isinstance(flat, Or):
                parts.extend(flat.parts)
            elif isinstance(flat, Literal) and flat.value is False:
                continue
            else:
                parts.append(flat)
        if not parts:
            return Literal(False)
        return parts[0] if len(parts) == 1 else Or(parts)
    if isinstance(expr, Comparison):
        return _fold_constant(expr)
    if isinstance(expr, Quantified):
        return Quantified(expr.quantifier, expr.count, expr.label,
                          _flatten(expr.condition))
    return expr


def _fold_constant(expr: Comparison) -> Expr:
    """Fold literal-vs-literal comparisons to TRUE/FALSE."""
    if isinstance(expr.left, Literal) and isinstance(expr.right, Literal):
        left, right = expr.left.value, expr.right.value
        try:
            result = {
                "=": left == right,
                "!=": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[expr.op]
        except TypeError:
            return expr
        return Literal(bool(result))
    return expr


def conjuncts(expr: Expr | None) -> list[Expr]:
    """Top-level AND conjuncts of a (simplified) qualification."""
    if expr is None:
        return []
    if isinstance(expr, And):
        return list(expr.parts)
    return [expr]


def sargable_root_terms(expr: Expr | None, root_label: str,
                        root_attrs: set[str]) -> list[tuple[str, str, Any]]:
    """(attr, op, value) conjuncts over root attributes.

    These are the predicates the planner can push into the root access
    (key lookup, access-path scan, or search argument of an atom-type
    scan); level-0 seed qualifications count as root predicates.  The
    value of a term is a literal **or** a prepared-statement
    :class:`~repro.mql.ast.Parameter` — a placeholder compares like a
    literal for sargability, so ``WHERE k = ?`` keeps the same access
    path the literal form gets, and binding substitutes the concrete
    value into the derived key range at execute time.
    """
    out: list[tuple[str, str, Any]] = []
    for part in conjuncts(expr):
        if not isinstance(part, Comparison):
            continue
        left, right, op = part.left, part.right, part.op
        if isinstance(right, Path) and isinstance(left, (Literal, Parameter)):
            left, right = right, left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                  "=": "=", "!=": "!="}[op]
        if not isinstance(left, Path) or \
                not isinstance(right, (Literal, Parameter)):
            continue
        if isinstance(right, Parameter):
            right = Literal(right)   # the parameter itself is the value
        if isinstance(right.value, bool) or right.value is None:
            continue
        parts = left.parts
        if left.level not in (None, 0):
            continue
        if len(parts) == 1 and parts[0] in root_attrs:
            out.append((parts[0], op, right.value))
        elif len(parts) == 2 and parts[0] == root_label and \
                parts[1] in root_attrs:
            out.append((parts[1], op, right.value))
    return out
