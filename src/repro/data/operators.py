"""Physical operators: the Volcano-style execution pipeline.

The paper's molecule management hands molecules to the application **one
at a time** across the MAD interface (paper, 3.1).  This module makes the
whole execution path honour that contract: a SELECT compiles into a tree
of demand-driven iterator operators (open/next/close, [Graefe's Volcano]),
so the first molecule is delivered before the root scan is exhausted and a
``LIMIT k`` stops construction after k molecules.

Operator inventory (bottom to top of a pipeline):

===================  =======================================================
RootScan             produces root surrogates: key lookup, access-path scan,
                     sort scan, or atom-type scan with a search argument
RootPartition        replays a pre-partitioned slice of a RootScan stream
                     (the parallel subsystem's construction workers)
MoleculeConstruct    root surrogate -> molecule, by association traversal
                     or from a materialised atom cluster
ResidualFilter       evaluates the residual qualification per molecule
Sort                 explicit final sort — the only pipeline breaker,
                     skipped when the root access already delivers the order
Offset / Limit       skip the first m molecules / stop after n molecules
Project              applies (qualified) projections to delivered molecules
===================  =======================================================

Every operator counts the rows it emits (``rows_out`` and the access
counters ``operator_rows:<Name>``), which benchmark reports use as
per-operator cost/row accounting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.access.access_path import AccessPath
from repro.access.cluster import AtomCluster
from repro.access.scans import AccessPathScan, AtomTypeScan, SearchArgument, SortScan
from repro.mad.molecule import Molecule, StructureNode
from repro.mad.types import Surrogate
from repro.mql.ast import Expr, Projection

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.data.executor import DataSystem
    from repro.data.plan import QueryPlan, RootAccess


class Operator:
    """One node of the physical operator tree (demand-driven iterator).

    The protocol is Volcano's: ``open()`` prepares the operator, ``next()``
    returns the next row or None at end, ``close()`` releases resources
    down the tree.  Iteration (``for row in op``) drives the same path.
    """

    name = "Operator"

    def __init__(self, *children: "Operator") -> None:
        self.children: tuple[Operator, ...] = children
        #: Rows this operator has emitted so far.
        self.rows_out = 0
        self._iterator: Iterator[Any] | None = None
        self._closed = False
        self._counters = None

    def bind_counters(self, counters) -> None:
        """Attach the access-system counters down the whole tree."""
        self._counters = counters
        for child in self.children:
            child.bind_counters(counters)

    # -- the Volcano protocol -------------------------------------------------

    def open(self) -> None:
        if self._iterator is None and not self._closed:
            self._iterator = self._produce()

    def next(self) -> Any | None:
        """Deliver the next row (None at end of the stream or after
        ``close()`` — a closed operator never reopens)."""
        if self._closed:
            return None
        self.open()
        assert self._iterator is not None
        try:
            row = next(self._iterator)
        except StopIteration:
            return None
        self.rows_out += 1
        if self._counters is not None:
            self._counters.bump(f"operator_rows:{self.name}")
        return row

    def close(self) -> None:
        """Release the tree's resources; the operator stays closed."""
        self._closed = True
        if self._iterator is not None:
            generator_close = getattr(self._iterator, "close", None)
            if generator_close is not None:
                generator_close()   # run pending finally blocks now
            self._iterator = None
        for child in self.children:
            child.close()

    def __iter__(self) -> Iterator[Any]:
        while True:
            row = self.next()
            if row is None:
                return
            yield row

    # -- what the subclasses provide ------------------------------------------

    def _produce(self) -> Iterator[Any]:
        raise NotImplementedError

    def detail(self) -> str:
        """Short parenthesised description for explain output."""
        return ""

    # -- explain ---------------------------------------------------------------

    def describe(self) -> str:
        inner = self.detail()
        return f"{self.name} ({inner})" if inner else self.name

    def render_tree(self, indent: int = 0) -> list[str]:
        """The operator subtree, one line per operator, children indented."""
        lines = [" " * indent + self.describe()]
        for child in self.children:
            lines.extend(child.render_tree(indent + 2))
        return lines


class RootScan(Operator):
    """Produce the root surrogates of a molecule-type scan.

    Wraps the four root-access kinds of query preparation: exact KEYS_ARE
    lookup, access-path scan, sort scan, and atom-type scan with a
    pushed-down search argument.  Delivery is lazy — downstream operators
    that stop pulling (LIMIT) leave the rest of the atom set untouched.
    """

    name = "RootScan"

    def __init__(self, data: "DataSystem", root_access: "RootAccess") -> None:
        super().__init__()
        self._data = data
        self.root_access = root_access

    def _produce(self) -> Iterator[Surrogate]:
        atoms = self._data.access.atoms
        access = self.root_access
        if access.kind == "key_lookup":
            surrogate = atoms.find_by_key(access.atom_type,
                                          access.detail["key"])
            if surrogate is not None:
                yield surrogate
            return
        if access.kind == "access_path":
            path = atoms.structure(access.detail["path"])
            assert isinstance(path, AccessPath)
            scan: Any = AccessPathScan(atoms, path,
                                       access.detail["conditions"])
        elif access.kind == "sort_scan":
            scan = SortScan(atoms, access.atom_type,
                            list(access.detail["attrs"]))
        else:
            search_terms = access.detail.get("search") or []
            search = SearchArgument(*search_terms) if search_terms else None
            scan = AtomTypeScan(atoms, access.atom_type, search=search)
        try:
            for surrogate, _values in scan:
                yield surrogate
        finally:
            scan.close()

    def detail(self) -> str:
        return self.root_access.explain()


class RootPartition(Operator):
    """Replay one partition of an already-derived root stream.

    The parallel subsystem partitions the RootScan output and hands each
    partition to a molecule-construction worker; this source operator is
    what those workers pull from.
    """

    name = "RootPartition"

    def __init__(self, roots: list[Surrogate], index: int = 0,
                 of: int = 1) -> None:
        super().__init__()
        self._roots = list(roots)
        self.index = index
        self.of = of

    def _produce(self) -> Iterator[Surrogate]:
        yield from self._roots

    def detail(self) -> str:
        return f"{len(self._roots)} root(s), partition {self.index + 1}/{self.of}"


class MoleculeConstruct(Operator):
    """Assemble one molecule per root surrogate.

    Construction follows the processing plan: association traversal over
    the base records, or a single page-sequence transfer from a matching
    atom cluster.
    """

    name = "MoleculeConstruct"

    def __init__(self, child: Operator, data: "DataSystem",
                 structure: StructureNode,
                 cluster_name: str | None = None) -> None:
        super().__init__(child)
        self._data = data
        self._structure = structure
        self._cluster_name = cluster_name

    def _cluster(self) -> AtomCluster | None:
        if self._cluster_name is None:
            return None
        cluster = self._data.access.atoms.structure(self._cluster_name)
        assert isinstance(cluster, AtomCluster)
        return cluster

    def _produce(self) -> Iterator[Molecule]:
        cluster = self._cluster()
        for root in self.children[0]:
            yield self._data.construct_molecule(self._structure, root,
                                                cluster)

    def detail(self) -> str:
        if self._cluster_name is not None:
            return f"from atom cluster {self._cluster_name}"
        return "association traversal"


class ResidualFilter(Operator):
    """Evaluate the residual qualification on each constructed molecule."""

    name = "ResidualFilter"

    def __init__(self, child: Operator, data: "DataSystem",
                 where: Expr) -> None:
        super().__init__(child)
        self._data = data
        self._where = where

    def _produce(self) -> Iterator[Molecule]:
        for molecule in self.children[0]:
            if self._data.evaluator.matches(self._where, molecule):
                yield molecule

    def detail(self) -> str:
        return "residual qualification per molecule"


class Sort(Operator):
    """Explicit final sort over root attributes — the pipeline breaker.

    Materialises the child stream, then emits in the requested order.
    Query preparation skips this operator when the root access (a sort
    scan) already delivers the order.
    """

    name = "Sort"

    def __init__(self, child: Operator,
                 order_by: list[tuple[str, bool]]) -> None:
        super().__init__(child)
        self._order_by = order_by

    def _produce(self) -> Iterator[Molecule]:
        molecules = list(self.children[0])
        sort_stable(molecules, self._order_by,
                    lambda molecule, attr: molecule.atom.get(attr))
        yield from molecules

    def detail(self) -> str:
        rendered = ", ".join(f"{attr} {'DESC' if desc else 'ASC'}"
                             for attr, desc in self._order_by)
        return f"{rendered} — pipeline breaker"


class Offset(Operator):
    """Skip the first ``m`` molecules of the stream."""

    name = "Offset"

    def __init__(self, child: Operator, offset: int) -> None:
        super().__init__(child)
        self._offset = offset

    def _produce(self) -> Iterator[Molecule]:
        skipped = 0
        for molecule in self.children[0]:
            if skipped < self._offset:
                skipped += 1
                continue
            yield molecule

    def detail(self) -> str:
        return str(self._offset)


class Limit(Operator):
    """Stop pulling from the pipeline after ``n`` molecules.

    Early termination is the point of the streaming refactor: with no
    pipeline breaker below, at most n molecules are ever constructed.
    """

    name = "Limit"

    def __init__(self, child: Operator, limit: int) -> None:
        super().__init__(child)
        self._limit = limit

    def _produce(self) -> Iterator[Molecule]:
        if self._limit <= 0:
            return
        delivered = 0
        for molecule in self.children[0]:
            yield molecule
            delivered += 1
            if delivered >= self._limit:
                return

    def detail(self) -> str:
        return str(self._limit)


class Project(Operator):
    """Apply the (qualified) projection to each delivered molecule."""

    name = "Project"

    def __init__(self, child: Operator, data: "DataSystem",
                 projection: Projection, structure: StructureNode) -> None:
        super().__init__(child)
        self._data = data
        self._projection = projection
        self._structure = structure

    def _produce(self) -> Iterator[Molecule]:
        for molecule in self.children[0]:
            self._data.apply_projection(molecule, self._projection,
                                        self._structure)
            yield molecule

    def detail(self) -> str:
        if self._projection.select_all:
            return "ALL"
        return f"{len(self._projection.items)} item(s)"


def sort_stable(items: list, order_by: list[tuple[str, bool]],
                value_of) -> None:
    """Explicit final sort, in place: stable sorts composed right-to-left
    give multi-attribute order with a per-attribute direction.

    ``value_of(item, attr)`` extracts the sort value — the Sort operator
    reads molecule atoms, the parallel path reads the pre-projection
    values its units captured.
    """
    from repro.access.btree import make_key
    for attr, descending in reversed(order_by):
        items.sort(key=lambda item: make_key(value_of(item, attr)),
                   reverse=descending)


def build_pipeline(data: "DataSystem", plan: "QueryPlan",
                   source: Operator | None = None) -> Operator:
    """Compile a processing plan into its physical operator tree.

    ``source`` replaces the RootScan when the caller already partitioned
    the root stream (the parallel subsystem's workers).  The canonical
    shape, bottom to top::

        RootScan -> MoleculeConstruct -> [ResidualFilter] -> [Sort]
                 -> [Offset] -> [Limit] -> Project
    """
    operator: Operator = source if source is not None \
        else RootScan(data, plan.root_access)
    operator = MoleculeConstruct(operator, data, plan.structure,
                                 plan.cluster_name)
    if plan.residual_where is not None:
        operator = ResidualFilter(operator, data, plan.residual_where)
    if plan.order_by and not plan.order_served_by_access:
        operator = Sort(operator, plan.order_by)
    if plan.offset:
        operator = Offset(operator, plan.offset)
    if plan.limit is not None:
        operator = Limit(operator, plan.limit)
    operator = Project(operator, data, plan.projection, plan.structure)
    operator.bind_counters(data.access.counters)
    return operator
