"""Physical operators: the Volcano-style execution pipeline.

The paper's molecule management hands molecules to the application **one
at a time** across the MAD interface (paper, 3.1).  This module makes the
whole execution path honour that contract: a SELECT compiles into a tree
of demand-driven iterator operators (open/next/close, [Graefe's Volcano]),
so the first molecule is delivered before the root scan is exhausted and a
``LIMIT k`` stops construction after k molecules.

Operator inventory (bottom to top of a pipeline):

===================  =======================================================
RootScan             produces root surrogates: key lookup, access-path scan,
                     sort scan (forward or reverse), or atom-type scan with
                     a search argument; ordered scans stream their B*-tree
                     walk lazily and accept a dynamic stop key (``bound()``)
RootPartition        replays a pre-partitioned slice of a RootScan stream
                     (the parallel subsystem's construction workers)
MoleculeConstruct    root surrogate -> molecule, by association traversal
                     or from a materialised atom cluster
ResidualFilter       evaluates the residual qualification per molecule
Sort                 explicit final sort — a pipeline breaker, skipped when
                     the root access already delivers the order; caches its
                     sorted run so a rewound pipeline does not re-sort
TopK                 ORDER BY + LIMIT k (+ OFFSET m) fused into one bounded
                     heap of k+m entries; when the input stream is already
                     ordered on a prefix of the sort attributes (a prefix-
                     matching sort scan, in either direction) the heap bound
                     cuts the scan short — and is pushed into the root
                     scan's walk as a dynamically tightening stop key
Offset / Limit       skip the first m molecules / stop after n molecules
Project              applies (qualified) projections to delivered molecules
===================  =======================================================

Every operator counts the rows it emits (``rows_out`` and the access
counters ``operator_rows:<Name>``) and the cumulative wall-time of its
``next()`` calls (``time_total``; the access counters
``operator_time:<Name>`` carry the *self* time, children's time already
subtracted), which benchmark reports use as per-operator cost/row/time
accounting.  The observability layer (:mod:`repro.obs`) subsumes these
measurements per query: a drained pipeline converts into a span tree
(:meth:`Operator.span`), which ``explain(analyze=True)``, the TRACE
wire message, and the slow log all render — same numbers, rooted under
the query instead of summed into the global counter bag.
"""

from __future__ import annotations

import heapq
import time
from functools import total_ordering
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.access.access_path import AccessPath
from repro.access.btree import make_key
from repro.access.cluster import AtomCluster
from repro.access.scans import AccessPathScan, AtomTypeScan, SearchArgument, SortScan
from repro.mad.molecule import Molecule, StructureNode
from repro.mad.types import Surrogate
from repro.mql.ast import Expr, Projection

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.data.executor import DataSystem
    from repro.data.plan import QueryPlan, RootAccess


class Operator:
    """One node of the physical operator tree (demand-driven iterator).

    The protocol is Volcano's: ``open()`` prepares the operator, ``next()``
    returns the next row or None at end, ``close()`` releases resources
    down the tree.  Iteration (``for row in op``) drives the same path.
    """

    name = "Operator"

    def __init__(self, *children: "Operator") -> None:
        self.children: tuple[Operator, ...] = children
        #: Rows this operator has emitted so far.
        self.rows_out = 0
        #: Cumulative wall-time spent inside ``next()`` (children included).
        self.time_total = 0.0
        self._iterator: Iterator[Any] | None = None
        self._closed = False
        self._counters = None
        self._close_hooks: list[Callable[["Operator"], None]] = []
        self._rows_key = f"operator_rows:{self.name}"
        self._time_key = f"operator_time:{self.name}"

    def bind_counters(self, counters) -> None:
        """Attach the access-system counters down the whole tree."""
        self._counters = counters
        for child in self.children:
            child.bind_counters(counters)

    # -- the Volcano protocol -------------------------------------------------

    def open(self) -> None:
        if self._iterator is None and not self._closed:
            self._iterator = self._produce()

    def next(self) -> Any | None:
        """Deliver the next row (None at end of the stream or after
        ``close()`` — a closed operator never reopens).

        Every call is timed with :func:`time.perf_counter`; the counter
        ``operator_time:<Name>`` accumulates the call's *self* time (the
        time the children spent inside this call already subtracted), so
        the per-operator times of one pipeline add up to its wall-time.
        """
        if self._closed:
            return None
        started = time.perf_counter()
        children_before = sum(c.time_total for c in self.children)
        self.open()
        assert self._iterator is not None
        try:
            row = next(self._iterator)
        except StopIteration:
            row = None
        elapsed = time.perf_counter() - started
        self.time_total += elapsed
        if self._counters is not None:
            children_elapsed = \
                sum(c.time_total for c in self.children) - children_before
            self._counters.bump(self._time_key,
                                max(elapsed - children_elapsed, 0.0))
        if row is None:
            return None
        self.rows_out += 1
        if self._counters is not None:
            self._counters.bump(self._rows_key)
        return row

    @property
    def self_time(self) -> float:
        """Wall-time spent in this operator alone."""
        return self.time_total - sum(c.time_total for c in self.children)

    def span(self, parent=None):
        """This (drained) subtree as an observability span tree.

        Re-roots the measurements ``next()`` already took (rows and
        wall-time per operator) under ``parent`` — nothing extra runs
        on the row path.  See :func:`repro.obs.trace.span_from_operator`.
        """
        from repro.obs.trace import span_from_operator
        return span_from_operator(self, parent)

    def add_close_hook(self, hook: Callable[["Operator"], None]) -> None:
        """Register a cursor-release hook, run once when this operator is
        explicitly closed.

        The serving layer (:mod:`repro.serve`) uses this to observe when a
        remote client's CLOSE (or a server-side cursor teardown) actually
        releases the pipeline — e.g. to account released pipelines and to
        drop per-cursor bookkeeping.  Hooks fire on the first ``close()``
        only (close is idempotent) and receive the operator.
        """
        self._close_hooks.append(hook)

    def close(self) -> None:
        """Release the tree's resources; the operator stays closed."""
        first_close = not self._closed
        self._closed = True
        if self._iterator is not None:
            generator_close = getattr(self._iterator, "close", None)
            if generator_close is not None:
                generator_close()   # run pending finally blocks now
            self._iterator = None
        for child in self.children:
            child.close()
        if first_close:
            hooks, self._close_hooks = self._close_hooks, []
            for hook in hooks:
                hook(self)

    def rewind(self) -> None:
        """Re-open the operator at the start of its stream.

        A closed operator stays closed; row/time accounting keeps
        accumulating across rewinds.  Pipeline breakers (Sort, TopK)
        override this to replay their cached run without re-pulling —
        and without re-sorting — their children.
        """
        if self._closed:
            return
        if self._iterator is not None:
            generator_close = getattr(self._iterator, "close", None)
            if generator_close is not None:
                generator_close()
            self._iterator = None
        for child in self.children:
            child.rewind()

    def __iter__(self) -> Iterator[Any]:
        while True:
            row = self.next()
            if row is None:
                return
            yield row

    # -- what the subclasses provide ------------------------------------------

    def _produce(self) -> Iterator[Any]:
        raise NotImplementedError

    def detail(self) -> str:
        """Short parenthesised description for explain output."""
        return ""

    # -- explain ---------------------------------------------------------------

    def describe(self) -> str:
        inner = self.detail()
        return f"{self.name} ({inner})" if inner else self.name

    def render_tree(self, indent: int = 0, analyze: bool = False) -> list[str]:
        """The operator subtree, one line per operator, children indented.

        With ``analyze=True`` every line carries the measured row count and
        self time of the operator (``explain(analyze=True)`` output).
        """
        line = " " * indent + self.describe()
        if analyze:
            line += (f"  [rows={self.rows_out}, "
                     f"self {max(self.self_time, 0.0) * 1000.0:.3f} ms]")
        lines = [line]
        for child in self.children:
            lines.extend(child.render_tree(indent + 2, analyze=analyze))
        return lines


class RootScan(Operator):
    """Produce the root surrogates of a molecule-type scan.

    Wraps the four root-access kinds of query preparation: exact KEYS_ARE
    lookup, access-path scan, sort scan (forward or reverse), and
    atom-type scan with a pushed-down search argument.  Delivery is lazy
    down to the storage structure — sort and access-path scans stream
    their B*-tree walk incrementally, so downstream operators that stop
    pulling (LIMIT) leave the rest of the *walk* untouched, not just the
    atom fetches.

    ``bound()`` is the dynamic search-argument hook: a consumer that
    learns mid-query how far the ordered walk can possibly matter (TopK's
    tightening heap threshold) feeds the key prefix in, and the
    underlying sort scan stops as soon as the walk passes it.
    """

    name = "RootScan"

    def __init__(self, data: "DataSystem", root_access: "RootAccess",
                 snapshot: Any = None) -> None:
        super().__init__()
        self._data = data
        self.root_access = root_access
        #: Snapshot view serving this pipeline's reads (None: live).
        self._snapshot = snapshot
        self._scan: Any = None
        self._stop_bound: tuple | None = None
        #: How many times a consumer pushed a (tighter) bound down.
        self.bounds_received = 0

    def bound(self, values: tuple) -> None:
        """Install/tighten a dynamic stop key on the underlying ordered
        scan (a no-op for unordered root accesses)."""
        self._stop_bound = tuple(values)
        self.bounds_received += 1
        if self._scan is not None and hasattr(self._scan, "set_stop_bound"):
            self._scan.set_stop_bound(self._stop_bound)

    def _produce(self) -> Iterator[Surrogate]:
        atoms = self._snapshot if self._snapshot is not None \
            else self._data.access.atoms
        # Under a snapshot the walk is materialised at open: a lazy
        # B*-tree walk suspended between fetch batches would race with
        # writers committing structure rebalances mid-cursor (readers
        # hold the engine's shared side only per batch).
        lazy = self._snapshot is None
        access = self.root_access
        if access.kind == "key_lookup":
            surrogate = atoms.find_by_key(access.atom_type,
                                          access.detail["key"])
            if surrogate is not None:
                yield surrogate
            return
        if access.kind == "access_path":
            path = atoms.structure(access.detail["path"])
            assert isinstance(path, AccessPath)
            scan: Any = AccessPathScan(atoms, path,
                                       access.detail["conditions"],
                                       lazy=lazy)
            if self._stop_bound is not None:
                scan.set_stop_bound(self._stop_bound)
        elif access.kind == "sort_scan":
            scan = SortScan(atoms, access.atom_type,
                            list(access.detail["attrs"]),
                            reverse=bool(access.detail.get("reverse")),
                            lazy=lazy)
            if self._stop_bound is not None:
                scan.set_stop_bound(self._stop_bound)
        else:
            search_terms = access.detail.get("search") or []
            search = SearchArgument(*search_terms) if search_terms else None
            scan = AtomTypeScan(atoms, access.atom_type, search=search)
        self._scan = scan
        try:
            for surrogate, _values in scan:
                yield surrogate
        finally:
            self._scan = None
            scan.close()

    def rewind(self) -> None:
        """Restart the stream; a stale dynamic bound is dropped (the next
        consumer run re-derives its own)."""
        self._stop_bound = None
        super().rewind()

    def detail(self) -> str:
        return self.root_access.explain()


class RootPartition(Operator):
    """Replay one partition of an already-derived root stream.

    The parallel subsystem partitions the RootScan output and hands each
    partition to a molecule-construction worker; this source operator is
    what those workers pull from.
    """

    name = "RootPartition"

    def __init__(self, roots: list[Surrogate], index: int = 0,
                 of: int = 1) -> None:
        super().__init__()
        self._roots = list(roots)
        self.index = index
        self.of = of

    def _produce(self) -> Iterator[Surrogate]:
        yield from self._roots

    def detail(self) -> str:
        return f"{len(self._roots)} root(s), partition {self.index + 1}/{self.of}"


class MoleculeConstruct(Operator):
    """Assemble one molecule per root surrogate.

    Construction follows the processing plan: association traversal over
    the base records, or a single page-sequence transfer from a matching
    atom cluster.
    """

    name = "MoleculeConstruct"

    def __init__(self, child: Operator, data: "DataSystem",
                 structure: StructureNode,
                 cluster_name: str | None = None,
                 snapshot: Any = None) -> None:
        super().__init__(child)
        self._data = data
        self._structure = structure
        self._cluster_name = cluster_name
        self._snapshot = snapshot

    def _cluster(self) -> AtomCluster | None:
        # An atom cluster's record copies track the live state; under a
        # snapshot, construction falls back to association traversal
        # through the epoch view.
        if self._cluster_name is None or self._snapshot is not None:
            return None
        cluster = self._data.access.atoms.structure(self._cluster_name)
        assert isinstance(cluster, AtomCluster)
        return cluster

    def _produce(self) -> Iterator[Molecule]:
        cluster = self._cluster()
        for root in self.children[0]:
            yield self._data.construct_molecule(self._structure, root,
                                                cluster,
                                                atoms=self._snapshot)

    def detail(self) -> str:
        if self._cluster_name is not None:
            return f"from atom cluster {self._cluster_name}"
        return "association traversal"


class ResidualFilter(Operator):
    """Evaluate the residual qualification on each constructed molecule."""

    name = "ResidualFilter"

    def __init__(self, child: Operator, data: "DataSystem",
                 where: Expr) -> None:
        super().__init__(child)
        self._data = data
        self._where = where

    def _produce(self) -> Iterator[Molecule]:
        for molecule in self.children[0]:
            if self._data.evaluator.matches(self._where, molecule):
                yield molecule

    def detail(self) -> str:
        return "residual qualification per molecule"


class Sort(Operator):
    """Explicit final sort over root attributes — a pipeline breaker.

    Materialises the child stream, then emits in the requested order.
    Query preparation skips this operator when the root access (a sort
    scan) already delivers the order, and replaces it (together with the
    Offset/Limit window) by :class:`TopK` when a LIMIT bounds the result.

    The sorted run is cached after the first exhaustion: re-opening the
    pipeline (``rewind()``, e.g. through ``ResultSet.reopen()``) replays
    the cached run instead of re-pulling the children and re-sorting.
    """

    name = "Sort"

    def __init__(self, child: Operator,
                 order_by: list[tuple[str, bool]]) -> None:
        super().__init__(child)
        self._order_by = order_by
        self._sorted_run: list[Molecule] | None = None

    def _produce(self) -> Iterator[Molecule]:
        if self._sorted_run is None:
            molecules = list(self.children[0])
            sort_stable(molecules, self._order_by,
                        lambda molecule, attr: molecule.atom.get(attr))
            self._sorted_run = molecules
            if self._counters is not None:
                self._counters.bump("operator_sort_runs")
        yield from self._sorted_run

    def rewind(self) -> None:
        """Replay the cached sorted run; only an un-run Sort rewinds its
        children."""
        if self._closed:
            return
        cascade = self._sorted_run is None
        if self._iterator is not None:
            self._iterator.close()
            self._iterator = None
        if cascade:
            for child in self.children:
                child.rewind()

    def detail(self) -> str:
        rendered = ", ".join(f"{attr} {'DESC' if desc else 'ASC'}"
                             for attr, desc in self._order_by)
        return f"{rendered} — pipeline breaker"


@total_ordering
class _Descending:
    """Inverts the order of one key part (a DESC attribute in ORDER BY)."""

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Descending) and self.key == other.key

    def __lt__(self, other: "_Descending") -> bool:
        return other.key < self.key


class _HeapEntry:
    """One retained row of a bounded top-k heap.

    ``rank`` is the full ordering: per-attribute keys (inverted for DESC
    attributes) followed by the arrival sequence number, so ties keep the
    earlier row — exactly the stable full sort's outcome.  ``__lt__`` is
    inverted because :mod:`heapq` builds min-heaps and the heap must keep
    its *worst* retained entry at the root for cheap replacement.
    """

    __slots__ = ("rank", "row")

    def __init__(self, rank: tuple, row: Any) -> None:
        self.rank = rank
        self.row = row

    def __lt__(self, other: "_HeapEntry") -> bool:
        return other.rank < self.rank


def order_rank(item: Any, order_by: list[tuple[str, bool]],
               value_of: Callable[[Any, str], Any]) -> tuple:
    """The comparable ordering key of one item under ``order_by``."""
    parts: list[Any] = []
    for attr, descending in order_by:
        key = make_key(value_of(item, attr))
        parts.append(_Descending(key) if descending else key)
    return tuple(parts)


class TopK(Operator):
    """ORDER BY + OFFSET m + LIMIT k fused into one bounded-heap operator.

    Where Sort materialises the whole child stream, TopK retains at most
    ``k + m`` molecules in a :mod:`heapq` heap whose root is the worst
    retained entry; every further molecule either replaces that root or is
    dropped on arrival.  Ties resolve to the earlier molecule, so the
    emitted window equals the stable full sort's.

    When the child stream is already ordered on the first
    ``ordered_prefix`` sort attributes (a prefix-matching sort scan as
    root access), the heap bound becomes a search argument in two ways:

    * **delivery-time early exit** — once the heap is full and an
      arriving molecule's prefix key exceeds the worst retained one, no
      later molecule can enter the heap and the child —
      ``MoleculeConstruct`` included — is cut short;
    * **dynamic bound pushdown** — whenever the heap fills or its worst
      retained entry improves, the worst entry's prefix key is fed into
      ``bound_target.bound()`` (the root scan), which installs it as a
      dynamically tightening stop key on the B*-tree/sort-order walk
      itself: the walk stops *before* the first beyond-bound root is
      even constructed.

    Like Sort, the emitted run is cached for ``rewind()``.
    """

    name = "TopK"

    def __init__(self, child: Operator, order_by: list[tuple[str, bool]],
                 limit: int, offset: int = 0,
                 ordered_prefix: int = 0,
                 bound_target: Operator | None = None) -> None:
        super().__init__(child)
        self._order_by = order_by
        self._limit = limit
        self._offset = offset
        self._ordered_prefix = ordered_prefix
        self._bound_target = bound_target if ordered_prefix else None
        self._pushed_bound: tuple | None = None
        #: High-water mark of the heap — never exceeds limit + offset.
        self.max_heap_size = 0
        #: True when the ordered-prefix bound stopped the child early.
        self.cut_short = False
        #: How many times the tightening heap bound was pushed down.
        self.bounds_pushed = 0
        self._run: list[Molecule] | None = None

    def _rank(self, molecule: Molecule, seq: int) -> tuple:
        return order_rank(molecule, self._order_by,
                          lambda m, attr: m.atom.get(attr)) + (seq,)

    def _produce(self) -> Iterator[Molecule]:
        if self._run is None:
            self._run = self._select_top()
            if self._counters is not None:
                self._counters.bump("operator_topk_runs")
        yield from self._run

    def _push_bound(self, heap: list[_HeapEntry]) -> None:
        """Feed the worst retained entry's ordered-prefix key into the
        root scan as its (tightening) dynamic stop key."""
        if self._bound_target is None:
            return
        worst = heap[0].row
        values = tuple(worst.atom.get(attr)
                       for attr, _desc in
                       self._order_by[:self._ordered_prefix])
        if values == self._pushed_bound:
            return   # a replacement within the same prefix group
        self._pushed_bound = values
        self._bound_target.bound(values)
        self.bounds_pushed += 1
        if self._counters is not None:
            self._counters.bump("topk_bounds_pushed")

    def _select_top(self) -> list[Molecule]:
        bound = self._limit + self._offset
        if self._limit <= 0 or bound <= 0:
            return []
        heap: list[_HeapEntry] = []
        child = self.children[0]
        prefix = self._ordered_prefix
        first_attr, first_desc = self._order_by[0]
        seq = 0
        while True:
            molecule = child.next()
            if molecule is None:
                break
            seq += 1
            if len(heap) < bound:
                heapq.heappush(
                    heap, _HeapEntry(self._rank(molecule, seq), molecule))
                if len(heap) > self.max_heap_size:
                    self.max_heap_size = len(heap)
                if len(heap) == bound:
                    self._push_bound(heap)
                continue
            # Fast reject on the first sort attribute alone: a molecule
            # strictly worse than the heap root there can never enter
            # (lexicographic order), so skip building the full rank.
            first = make_key(molecule.atom.get(first_attr))
            if first_desc:
                first = _Descending(first)
            worst_first = heap[0].rank[0]
            if worst_first < first:
                if prefix:
                    # Sargable early exit: the stream is ordered on the
                    # first attribute(s), so no later molecule can beat
                    # the worst retained entry — stop constructing.
                    self.cut_short = True
                    break
                continue
            entry = _HeapEntry(self._rank(molecule, seq), molecule)
            if entry.rank < heap[0].rank:
                heapq.heapreplace(heap, entry)
                self._push_bound(heap)
        ordered = sorted(heap, key=lambda e: e.rank)
        return [e.row for e in ordered[self._offset:]]

    def rewind(self) -> None:
        """Replay the cached top-k run; only an un-run TopK rewinds its
        children."""
        if self._closed:
            return
        cascade = self._run is None
        if self._iterator is not None:
            self._iterator.close()
            self._iterator = None
        if cascade:
            for child in self.children:
                child.rewind()

    def detail(self) -> str:
        rendered = ", ".join(f"{attr} {'DESC' if desc else 'ASC'}"
                             for attr, desc in self._order_by)
        suffix = ""
        if self._ordered_prefix:
            suffix = f"; input ordered on first {self._ordered_prefix}"
            if self._bound_target is not None:
                suffix += " — dynamic scan bound"
        return (f"k={self._limit}, offset={self._offset}; {rendered} — "
                f"bounded heap{suffix}")


class Offset(Operator):
    """Skip the first ``m`` molecules of the stream."""

    name = "Offset"

    def __init__(self, child: Operator, offset: int) -> None:
        super().__init__(child)
        self._offset = offset

    def _produce(self) -> Iterator[Molecule]:
        skipped = 0
        for molecule in self.children[0]:
            if skipped < self._offset:
                skipped += 1
                continue
            yield molecule

    def detail(self) -> str:
        return str(self._offset)


class Limit(Operator):
    """Stop pulling from the pipeline after ``n`` molecules.

    Early termination is the point of the streaming refactor: with no
    pipeline breaker below, at most n molecules are ever constructed.
    """

    name = "Limit"

    def __init__(self, child: Operator, limit: int) -> None:
        super().__init__(child)
        self._limit = limit

    def _produce(self) -> Iterator[Molecule]:
        if self._limit <= 0:
            return
        delivered = 0
        for molecule in self.children[0]:
            yield molecule
            delivered += 1
            if delivered >= self._limit:
                return

    def detail(self) -> str:
        return str(self._limit)


class Project(Operator):
    """Apply the (qualified) projection to each delivered molecule."""

    name = "Project"

    def __init__(self, child: Operator, data: "DataSystem",
                 projection: Projection, structure: StructureNode) -> None:
        super().__init__(child)
        self._data = data
        self._projection = projection
        self._structure = structure

    def _produce(self) -> Iterator[Molecule]:
        for molecule in self.children[0]:
            self._data.apply_projection(molecule, self._projection,
                                        self._structure)
            yield molecule

    def detail(self) -> str:
        if self._projection.select_all:
            return "ALL"
        return f"{len(self._projection.items)} item(s)"


def sort_stable(items: list, order_by: list[tuple[str, bool]],
                value_of) -> None:
    """Explicit final sort, in place: stable sorts composed right-to-left
    give multi-attribute order with a per-attribute direction.

    ``value_of(item, attr)`` extracts the sort value — the Sort operator
    reads molecule atoms, the parallel path reads the pre-projection
    values its units captured.
    """
    from repro.access.btree import make_key
    for attr, descending in reversed(order_by):
        items.sort(key=lambda item: make_key(value_of(item, attr)),
                   reverse=descending)


def top_k_stable(items: Iterator[Any], order_by: list[tuple[str, bool]],
                 value_of, limit: int, offset: int = 0) -> list:
    """Bounded-heap selection over an iterable: the first ``limit`` items
    after ``offset`` of the stable full sort, retaining at most
    ``limit + offset`` items at any moment.

    The list-shaped twin of the :class:`TopK` operator — the parallel
    subsystem's merge stage uses it over its units' order values.
    """
    bound = limit + offset
    if limit <= 0 or bound <= 0:
        return []
    heap: list[_HeapEntry] = []
    for seq, item in enumerate(items):
        entry = _HeapEntry(order_rank(item, order_by, value_of) + (seq,),
                           item)
        if len(heap) < bound:
            heapq.heappush(heap, entry)
        elif entry.rank < heap[0].rank:
            heapq.heapreplace(heap, entry)
    ordered = sorted(heap, key=lambda e: e.rank)
    return [e.row for e in ordered[offset:]]


def build_pipeline(data: "DataSystem", plan: "QueryPlan",
                   source: Operator | None = None,
                   use_topk: bool = True,
                   push_bound: bool = True,
                   snapshot: Any = None) -> Operator:
    """Compile a processing plan into its physical operator tree.

    ``source`` replaces the RootScan when the caller already partitioned
    the root stream (the parallel subsystem's workers).  The canonical
    shape, bottom to top::

        RootScan -> MoleculeConstruct -> [ResidualFilter]
                 -> [Sort | TopK] -> [Offset] -> [Limit] -> Project

    An explicit sort with a LIMIT fuses into one :class:`TopK` operator
    (which swallows the Offset/Limit window); ``use_topk=False`` keeps the
    Sort/Offset/Limit stack — the full-sort baseline benchmarks compare
    against.  When the root access serves an ORDER BY prefix, TopK is
    additionally wired back to the root scan so its tightening heap bound
    stops the ordered walk itself (``push_bound=False`` disconnects that
    feedback — the pushdown baseline).

    ``snapshot`` (a :class:`~repro.access.snapshots.SnapshotView`) pins
    every read of the pipeline — root derivation and molecule
    construction — to one atom-version epoch; the pipeline then needs
    no read locks at all.
    """
    root: Operator = source if source is not None \
        else RootScan(data, plan.root_access, snapshot=snapshot)
    operator: Operator = root
    operator = MoleculeConstruct(operator, data, plan.structure,
                                 plan.cluster_name, snapshot=snapshot)
    if plan.residual_where is not None:
        operator = ResidualFilter(operator, data, plan.residual_where)
    windowed = False
    if plan.order_by and not plan.order_served_by_access:
        if use_topk and plan.limit is not None:
            bound_target = root if push_bound and hasattr(root, "bound") \
                else None
            operator = TopK(operator, plan.order_by, plan.limit,
                            plan.offset,
                            ordered_prefix=plan.order_prefix_served,
                            bound_target=bound_target)
            windowed = True
        else:
            operator = Sort(operator, plan.order_by)
    if not windowed:
        if plan.offset:
            operator = Offset(operator, plan.offset)
        if plan.limit is not None:
            operator = Limit(operator, plan.limit)
    operator = Project(operator, data, plan.projection, plan.structure)
    operator.bind_counters(data.access.counters)
    return operator
