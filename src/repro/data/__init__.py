"""The data system of PRIMA (paper, section 3.1)."""

from repro.data.executor import DataSystem
from repro.data.operators import (
    Limit,
    MoleculeConstruct,
    Offset,
    Operator,
    Project,
    ResidualFilter,
    RootPartition,
    RootScan,
    Sort,
    build_pipeline,
)
from repro.data.plan import QueryPlan, RootAccess
from repro.data.predicates import PredicateEvaluator, path_values
from repro.data.result import ResultSet
from repro.data.simplification import conjuncts, sargable_root_terms, simplify
from repro.data.validation import MoleculeTypeCatalog, Validator

__all__ = [
    "DataSystem",
    "Limit",
    "MoleculeConstruct",
    "MoleculeTypeCatalog",
    "Offset",
    "Operator",
    "PredicateEvaluator",
    "Project",
    "QueryPlan",
    "ResidualFilter",
    "ResultSet",
    "RootAccess",
    "RootPartition",
    "RootScan",
    "Sort",
    "Validator",
    "build_pipeline",
    "conjuncts",
    "path_values",
    "sargable_root_terms",
    "simplify",
]
