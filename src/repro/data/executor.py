"""The data system: translating MQL statements into access-system calls.

The main task of the data system is to perform the complex mapping of the
molecule-oriented interface onto the atom-oriented interface of the access
system (paper, 3.1).  The stages follow the paper's modular data system:

1. **query validation and modification** — syntax/semantics checks,
   resolution of predefined molecule types, hierarchical resolution
   (:mod:`repro.data.validation`);
2. **query simplification** — qualification normal form
   (:mod:`repro.data.simplification`);
3. **query preparation** — the processing plan: root access selection,
   cluster matching, recursion strategy (:mod:`repro.data.plan`);
4. **molecule management** — the molecule-type scan, compiled into the
   Volcano-style operator pipeline of :mod:`repro.data.operators`: a
   ``RootScan`` derives root atoms, ``MoleculeConstruct`` assembles
   molecules by association traversal or from an atom cluster, and the
   residual qualification, ordering, windowing (LIMIT/OFFSET) and
   (qualified) projections are applied by the operators above it.

``select()`` returns a **lazy** :class:`~repro.data.result.ResultSet`: a
cursor over the pipeline that delivers the first molecule before the root
scan is exhausted (the paper's one-molecule-at-a-time MAD interface).
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any

from repro.access.access_path import AccessPath
from repro.access.cluster import AtomCluster
from repro.access.multidim import KeyCondition
from repro.access.snapshots import SnapshotView
from repro.access.system import AccessSystem
from repro.data.plan import QueryPlan, RootAccess
from repro.data.predicates import PredicateEvaluator, path_values
from repro.data.prepared import (
    BoundTemplateStatement,
    PlanCache,
    PreparedStatement,
    extract_template,
    iter_parameters,
    template_matches,
)
from repro.data.result import ResultSet
from repro.data.simplification import sargable_root_terms, simplify
from repro.data.validation import MoleculeTypeCatalog, Validator
from repro.errors import ExecutionError, ValidationError
from repro.mad.molecule import Molecule, MoleculeType, StructureNode
from repro.mad.types import Surrogate, reference_values
from repro.mql.ast import (
    CreateAtomType,
    DefineMoleculeType,
    DeleteStatement,
    DropAtomType,
    DropMoleculeType,
    EmptyLiteral,
    Expr,
    InsertStatement,
    Literal,
    ModifyStatement,
    Parameter,
    Path,
    Projection,
    RefLookup,
    SelectStatement,
    Statement,
)
from repro.mql.parser import parse
from repro.mad.schema import AtomType
from repro.obs import Observability
from repro.obs.trace import span_from_operator


class DataSystem:
    """Executes validated MQL statements against the access system."""

    def __init__(self, access: AccessSystem,
                 catalog: MoleculeTypeCatalog | None = None) -> None:
        self.access = access
        self.schema = access.schema
        self.catalog = catalog if catalog is not None else MoleculeTypeCatalog()
        self.validator = Validator(self.schema, self.catalog)
        self.evaluator = PredicateEvaluator(resolve_ref=self._resolve_ref)
        from repro.data.statistics import StatisticsCatalog
        #: Meta-data statistics for the optimizer (collected by ANALYZE).
        self.statistics = StatisticsCatalog(access)
        #: Predicates above this estimated selectivity scan instead of
        #: using an access path (the A5 crossover).
        self.scan_threshold = 0.30
        #: Set after DDL; queries verify symmetry once before running.
        self._symmetry_checked = False
        #: Shared, catalog-versioned LRU of prepared statements — sits
        #: under every query entry point (facade, serving sessions,
        #: parallel_select), so repeated statement text skips parse+plan.
        self.plan_cache = PlanCache()
        #: Literal variants of one statement shape share a single cached
        #: plan template (promoted on the second distinct variant); turn
        #: off to cache every literal text separately.
        self.auto_parameterize = True
        #: This engine's observability bundle: the query tracer
        #: (off-by-default sampling), the metrics registry (latency
        #: histograms and gauges on top of the counter bag), and the
        #: slow-query log.  ``Prima.metrics_report()`` exports it.
        self.obs = Observability()

    @property
    def catalog_version(self) -> int:
        """Monotonic stamp of everything a cached plan depends on:
        schema DDL, the molecule-type catalog, and the LDL
        tuning-structure inventory.  Prepared statements record it and
        transparently re-plan when it moves."""
        return (self.schema.version + self.catalog.version
                + self.access.atoms.structures_version)

    # ---------------------------------------------------- prepared statements --

    def prepare(self, mql: str,
                use_cache: bool = True) -> PreparedStatement:
        """Parse, validate, and plan one statement — through the cache.

        Repeated (whitespace-normalized) SELECT text returns the cached
        :class:`~repro.data.prepared.PreparedStatement` without touching
        the parser (``plan_cache_hits``); a miss parses and plans once
        (``statements_parsed`` / ``plan_cache_misses``) and caches the
        result.  DML/DDL statements are prepared but never cached —
        their execution must re-qualify against current state anyway.

        With :attr:`auto_parameterize` on, *literal variants* of one
        SELECT shape (``... WHERE n = 1`` / ``... WHERE n = 2``) are
        recognised on the second distinct variant and promoted to a
        single shared plan template with the literals as bound
        parameters (``plan_cache_template_hits``) — the repetitive
        checkout workload stops filling the cache with per-value plans.
        """
        key = PlanCache.normalize(mql)
        caching = use_cache and self.plan_cache.capacity > 0
        if caching:
            hit = self.plan_cache.get(key)
            if hit is not None:
                self.access.counters.bump("plan_cache_hits")
                return hit
            if self.auto_parameterize:
                bound = self._prepare_via_template(mql)
                if bound is not None:
                    return bound
        statement = parse(mql)
        self.access.counters.bump("statements_parsed")
        prepared = PreparedStatement(self, mql, statement)
        if caching and prepared.kind == "select":
            self.access.counters.bump("plan_cache_misses")
            self.plan_cache.put(key, prepared)
        return prepared

    def _prepare_via_template(self, mql: str) -> BoundTemplateStatement | None:
        """Share one cached plan across literal variants of a statement.

        The statement's literals are lifted into positional parameters
        (:func:`~repro.data.prepared.extract_template`); the resulting
        *template key* identifies the statement shape.  The first
        sighting of a shape only notes the key (a one-off literal query
        plans normally — nothing changes for it); the second distinct
        variant parses and caches the shared template; every later
        variant binds its literals into that template without parsing
        (``plan_cache_template_hits``).  Returns ``None`` whenever the
        literal path should proceed as usual.
        """
        extracted = extract_template(mql)
        if extracted is None:
            return None
        template_text, values = extracted
        tkey = PlanCache.normalize(template_text)
        template = self.plan_cache.get(tkey)
        if template is None:
            if not self.plan_cache.note_template(tkey):
                return None   # first sighting of this shape
            statement = parse(template_text)
            self.access.counters.bump("statements_parsed")
            template = PreparedStatement(self, template_text, statement)
            if not template_matches(template, values):
                return None
            self.access.counters.bump("plan_cache_misses")
            self.plan_cache.put(tkey, template)
        else:
            if not isinstance(template, PreparedStatement) \
                    or not template_matches(template, values):
                return None
            self.access.counters.bump("plan_cache_template_hits")
        return BoundTemplateStatement(mql, template, values)

    def execute_text(self, mql: str, args: tuple = (),
                     params: dict[str, Any] | None = None,
                     use_cache: bool = True) -> ResultSet:
        """Prepare (cache-aware) and execute one statement text."""
        prepared = self.prepare(mql, use_cache=use_cache)
        return prepared.execute(*args, **(params or {}))

    # ------------------------------------------------------------ snapshots --

    def open_snapshot(self) -> SnapshotView:
        """Pin a read snapshot at the current atom-version epoch.

        The returned view substitutes for the atom manager throughout
        one pipeline (``plan.compile(..., snapshot=view)``): the reader
        needs **no** type-level S lock — it sees the committed state as
        of its open, no matter what writers do concurrently.  Release it
        (or use it as a context manager) when the cursor closes.
        """
        return self.access.atoms.open_snapshot()

    def open_result(self, prepared: "PreparedStatement | Any",
                    args: tuple = (),
                    params: dict[str, Any] | None = None) -> ResultSet:
        """Bind and execute a prepared SELECT over a pinned snapshot.

        The lock-free serving read path as one call: bind the plan, pin
        a snapshot at the current atom-version epoch, compile the
        pipeline against it, and hand back a lazy :class:`ResultSet`
        that releases the snapshot when its cursor closes.  Shared by
        the serving sessions and the cluster coordinator (which calls
        it per shard) — the snapshot lifetime rules live in one place.
        """
        plan = prepared.bind(args, params or {})
        snapshot = self.open_snapshot()
        try:
            pipeline = plan.compile(self, snapshot=snapshot)
            result = ResultSet(source=pipeline, plan_text=plan.explain())
        except BaseException:
            snapshot.release()
            raise
        result.on_close(lambda _op: snapshot.release())
        self.watch_query(getattr(prepared, "text", ""), pipeline)
        return result

    def watch_query(self, text: str, pipeline: Any) -> None:
        """Arm per-query accounting on a compiled pipeline.

        When the cursor is closed, the elapsed wall-time lands in the
        ``query_latency_ms`` histogram and the slow log; when the tracer
        sampled this query, the slow-log entry additionally carries the
        span tree with one span per operator (rebuilt from the
        operators' own measurements, so nothing extra runs per row).
        """
        obs = self.obs
        span = obs.tracer.start("query", mql=text)
        started = time.perf_counter()

        def _finish(operator: Any) -> None:
            duration = time.perf_counter() - started
            if span is not None:
                span.duration = duration
                span_from_operator(operator, parent=span)
            obs.observe_query(text, duration, span)

        pipeline.add_close_hook(_finish)

    def publish_data_version(self) -> int:
        """Advance the atom-version epoch (a commit boundary).

        Mirrors :attr:`catalog_version` for *data*: every committed
        batch of writes — a checkin, a DML statement, DDL — publishes,
        so snapshots opened afterwards see the new state while pinned
        readers keep theirs.
        """
        return self.access.atoms.publish_epoch()

    # ------------------------------------------------------------ dispatch --

    def execute(self, statement: Statement) -> ResultSet:
        """Execute one parsed MQL statement.

        Every completed non-SELECT statement publishes a new
        atom-version epoch — the commit boundary of the snapshot clock
        (readers pinned before it keep their state; snapshots opened
        after it see the writes).
        """
        if isinstance(statement, SelectStatement):
            self._ensure_symmetry()
            return self.select(statement)
        result = self._execute_mutation(statement)
        self.publish_data_version()
        return result

    def _execute_mutation(self, statement: Statement) -> ResultSet:
        if isinstance(statement, CreateAtomType):
            return self._create_atom_type(statement)
        if isinstance(statement, DropAtomType):
            return self._drop_atom_type(statement)
        if isinstance(statement, DefineMoleculeType):
            return self._define_molecule_type(statement)
        if isinstance(statement, DropMoleculeType):
            self.catalog.drop(statement.name)
            return ResultSet(affected=0)
        self._ensure_symmetry()
        if isinstance(statement, InsertStatement):
            return self._insert(statement)
        if isinstance(statement, DeleteStatement):
            return self._delete(statement)
        if isinstance(statement, ModifyStatement):
            return self._modify(statement)
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    def _ensure_symmetry(self) -> None:
        if not self._symmetry_checked:
            self.schema.check_symmetry()
            self._symmetry_checked = True

    # ------------------------------------------------------------------ DDL --

    def _create_atom_type(self, statement: CreateAtomType) -> ResultSet:
        atom_type = AtomType(statement.name, statement.attributes,
                             keys=statement.keys)
        self.schema.create_atom_type(atom_type)
        self.access.atoms.register_atom_type(statement.name)
        self._symmetry_checked = False
        return ResultSet(affected=0)

    def _drop_atom_type(self, statement: DropAtomType) -> ResultSet:
        if self.access.atoms.count(statement.name):
            raise ExecutionError(
                f"atom type {statement.name!r} still has atoms"
            )
        self.schema.drop_atom_type(statement.name)
        self.access.atoms.unregister_atom_type(statement.name)
        return ResultSet(affected=0)

    def _define_molecule_type(self,
                              statement: DefineMoleculeType) -> ResultSet:
        self._ensure_symmetry()
        structure = self.validator.resolve_structure(statement.structure)
        self.catalog.define(MoleculeType(statement.name, structure))
        return ResultSet(affected=0)

    # ------------------------------------------------------------- queries --

    def plan_select(self, statement: SelectStatement) -> QueryPlan:
        """Validation + simplification + preparation, without execution."""
        structure = self.validator.resolve_structure(statement.from_clause)
        self.validator.check_select(statement, structure)
        where = simplify(statement.where)
        order_by = self._validate_order_by(statement, structure)
        root_access = self._choose_root_access(structure, where)
        order_served = False
        order_prefix = 0
        if order_by and root_access.kind == "atom_type_scan" and \
                not root_access.detail.get("search"):
            # An ordering structure matching the leading uniform-direction
            # ORDER BY prefix makes the (possibly reverse) sort scan the
            # root access: a full match delivers the requested order for
            # free; a partial match still orders the stream on the leading
            # attributes, which lets TopK cut the scan short — and push
            # its tightening heap bound into the walk itself.
            sort_access, served = self._ordering_sort_scan(structure,
                                                           order_by)
            if sort_access is not None:
                root_access = sort_access
                if served == len(order_by):
                    order_served = True
                else:
                    order_prefix = served
        elif order_by and root_access.kind == "access_path":
            # A sargable B*-tree access path already walks its attribute
            # list in value order — when those attributes prefix-match
            # the leading uniform-direction ORDER BY run, the (possibly
            # reverse) bounded walk serves that prefix for free, and
            # TopK's tightening heap bound combines with the static
            # range as a dynamic stop key inside the walk.
            served = self._arm_access_path_order(root_access, order_by)
            if served == len(order_by):
                order_served = True
            else:
                order_prefix = served
        cluster = self._matching_cluster(structure)
        # Parameterized windows are validated at bind time instead.
        if isinstance(statement.limit, int) and statement.limit < 0:
            raise ValidationError("LIMIT must be non-negative")
        if isinstance(statement.offset, int) and statement.offset < 0:
            raise ValidationError("OFFSET must be non-negative")
        return QueryPlan(
            structure=structure,
            root_access=root_access,
            cluster_name=cluster.name if cluster is not None else None,
            residual_where=where,
            projection=statement.projection,
            order_by=order_by,
            order_served_by_access=order_served,
            order_prefix_served=order_prefix,
            limit=statement.limit,
            offset=statement.offset,
            parameters=tuple(iter_parameters(statement)),
        )

    def _validate_order_by(self, statement: SelectStatement,
                           structure: StructureNode) -> list[tuple[str, bool]]:
        out: list[tuple[str, bool]] = []
        root_type = self.schema.atom_type(structure.atom_type)
        for item in statement.order_by:
            parts = item.path.parts
            if len(parts) == 2 and parts[0] == structure.label:
                attr = parts[1]
            elif len(parts) == 1:
                attr = parts[0]
            elif len(parts) == 2:
                # A two-part path whose qualifier is not the root label:
                # the label is wrong, not the shape — say so.
                raise ValidationError(
                    f"ORDER BY path {'.'.join(parts)!r} must be qualified "
                    f"by the root label {structure.label!r}, not "
                    f"{parts[0]!r} (only root attributes can order the "
                    f"result)"
                )
            else:
                raise ValidationError(
                    f"ORDER BY supports root attributes only, got "
                    f"{'.'.join(parts)!r}"
                )
            if attr not in root_type.attributes:
                raise ValidationError(
                    f"atom type {root_type.name!r} has no attribute "
                    f"{attr!r} (ORDER BY)"
                )
            out.append((attr, item.descending))
        return out

    def _ordering_sort_scan(self, structure: StructureNode,
                            order_by: list[tuple[str, bool]]
                            ) -> tuple[RootAccess | None, int]:
        """The sort scan serving the longest ORDER BY prefix, if any.

        Returns ``(access, served)`` where ``served`` counts the leading
        ORDER BY attributes the scan delivers in order.  An ordering
        structure — a sort order, or a B*-tree access path over the sort
        attributes — delivers its attribute list ascending when scanned
        forward and descending when scanned in **reverse**, so the
        servable prefix is the longest leading run of ORDER BY attributes
        sharing one direction: ``ORDER BY a DESC, b DESC`` matches a
        structure on ``(a, b)`` walked backwards, ``ORDER BY a DESC, b``
        still serves its first attribute (``served == 1``), which arms
        TopK's early exit and dynamic scan bound.  ``served ==
        len(order_by)`` means the requested order comes for free.

        Tie semantics of a served order: molecules equal on *all* of the
        structure's attributes arrive in insertion (ascending surrogate)
        order in either scan direction; when a longer structure serves a
        shorter ORDER BY, ties beyond the requested attributes follow
        the structure's remaining attributes in scan direction — a valid
        instance of the requested order, exactly as in the ascending
        case.
        """
        direction = order_by[0][1]
        wanted: list[str] = []
        for attr, descending in order_by:
            if descending != direction:
                break
            wanted.append(attr)
        from repro.access.sort_order import SortOrder

        def prefix_len(have: tuple[str, ...]) -> int:
            matched = 0
            for have_attr, want_attr in zip(have, wanted):
                if have_attr != want_attr:
                    break
                matched += 1
            return matched

        best_name: str | None = None
        best_attrs: tuple[str, ...] = ()
        best_len = 0
        for candidate in self.access.atoms.structures_for(
                structure.atom_type, "sort_order"):
            assert isinstance(candidate, SortOrder)
            matched = prefix_len(candidate.sort_attrs)
            if matched > best_len:
                best_name = candidate.name
                best_attrs = candidate.sort_attrs
                best_len = matched
        # "It may engage an access path if available" (paper, 3.2): a
        # B*-tree over the attributes delivers the value order too.  A
        # path serving a strictly longer prefix beats a sort order (more
        # of the ORDER BY comes for free); at equal length the sort
        # order wins — its record copies save the atom fetches.
        for candidate in self.access.atoms.structures_for(
                structure.atom_type, "access_path"):
            assert isinstance(candidate, AccessPath)
            if candidate.method != "btree":
                continue
            matched = prefix_len(candidate.attrs)
            if matched > best_len:
                best_name = candidate.name
                best_attrs = candidate.attrs
                best_len = matched
        if best_name is None:
            return None, 0
        return RootAccess("sort_scan", structure.atom_type, {
            "order": best_name,
            "attrs": best_attrs,
            "reverse": direction,
        }), best_len

    def _arm_access_path_order(self, root_access: RootAccess,
                               order_by: list[tuple[str, bool]]) -> int:
        """Leading ORDER BY attributes a chosen access path serves.

        Only B*-tree paths have a linear order.  A descending run
        re-stamps every key condition with ``descending=True`` so the
        bounded walk runs in reverse; ties within equal keys stay in
        ascending-surrogate order in either direction (see
        :meth:`~repro.access.access_path.AccessPath.scan`), matching the
        stable-sort contract of the explicit Sort operator.
        """
        path = self.access.atoms.structure(root_access.detail["path"])
        assert isinstance(path, AccessPath)
        if path.method != "btree":
            return 0
        direction = order_by[0][1]
        wanted: list[str] = []
        for attr, descending in order_by:
            if descending != direction:
                break
            wanted.append(attr)
        served = 0
        for have, want in zip(path.attrs, wanted):
            if have != want:
                break
            served += 1
        if not served:
            return 0
        if direction:
            root_access.detail["conditions"] = [
                replace(cond, descending=True)
                for cond in root_access.detail["conditions"]
            ]
        root_access.detail["reverse"] = direction
        return served

    def select(self, statement: SelectStatement) -> ResultSet:
        """Compile the plan into the operator pipeline; return a cursor.

        The result set is lazy: molecules are constructed as the caller
        pulls them, so a ``LIMIT k`` (or an abandoned iteration) leaves
        the rest of the root atom set untouched.
        """
        plan = self.plan_select(statement)
        pipeline = plan.compile(self)
        return ResultSet(source=pipeline, plan_text=plan.explain())

    # -- root access ----------------------------------------------------------------

    def _choose_root_access(self, structure: StructureNode,
                            where: Expr | None) -> RootAccess:
        root_type = self.schema.atom_type(structure.atom_type)
        terms = sargable_root_terms(where, structure.label,
                                    set(root_type.attributes))
        # 1. Exact KEYS_ARE lookup.
        eq_terms = {attr: value for attr, op, value in terms if op == "="}
        if root_type.keys and set(root_type.keys) <= set(eq_terms):
            key = tuple(eq_terms[attr] for attr in root_type.keys)
            return RootAccess("key_lookup", root_type.name, {"key": key})
        # 2. Access path whose first attribute carries a condition — unless
        #    the meta-data statistics say the predicate is so unselective
        #    that the atom-type scan wins (the A5 crossover).
        for path in self.access.atoms.structures_for(root_type.name,
                                                     "access_path"):
            assert isinstance(path, AccessPath)
            bounds = _range_for(terms, path.attrs[0])
            if bounds is not None:
                attr_terms = [(a, op, v) for a, op, v in terms
                              if a == path.attrs[0]]
                if any(isinstance(v, Parameter) for _a, _op, v in attr_terms):
                    # A placeholder's value is unknown at plan time: the
                    # statistics cannot veto the path, so a prepared
                    # range keeps the same sargable access the typical
                    # literal form gets.
                    estimate = None
                else:
                    estimate = self.statistics.selectivity(root_type.name,
                                                           attr_terms)
                if estimate is not None and estimate > self.scan_threshold:
                    continue   # statistics veto: scan instead
                conditions = [bounds] + [KeyCondition()] * (len(path.attrs) - 1)
                detail = {
                    "path": path.name,
                    "attr": path.attrs[0],
                    "conditions": conditions,
                    "range": _render_bounds(path.attrs[0], bounds),
                    "selectivity": estimate,
                }
                if estimate is None:
                    # The crossover could not be decided here (a
                    # placeholder hides the value, or statistics are
                    # missing): stash the deferred terms and the scan
                    # fallback so bind time can re-veto against the
                    # concrete literals (repro.data.prepared.reveto_plan).
                    detail["reveto"] = list(attr_terms)
                    detail["fallback_search"] = [
                        (attr, op, value) for attr, op, value in terms
                        if op in ("=", "!=", "<", "<=", ">", ">=")
                    ]
                return RootAccess("access_path", root_type.name, detail)
        # 3. Atom-type scan; push simple terms down as a search argument.
        search_terms = [(attr, op, value) for attr, op, value in terms
                        if op in ("=", "!=", "<", "<=", ">", ">=")]
        return RootAccess("atom_type_scan", root_type.name,
                          {"search": search_terms})

    # -- molecule construction ----------------------------------------------------------

    def _matching_cluster(self,
                          structure: StructureNode) -> AtomCluster | None:
        """An atom cluster whose structure equals the query structure."""
        for candidate in self.access.atoms.structures_for(
                structure.atom_type, "cluster"):
            assert isinstance(candidate, AtomCluster)
            if _signature(candidate.structure) == _signature(structure):
                return candidate
        return None

    def construct_molecule(self, structure: StructureNode, root: Surrogate,
                           cluster: AtomCluster | None = None,
                           atoms: Any = None) -> Molecule:
        """Assemble one molecule, preferring the materialised cluster.

        ``atoms`` substitutes a pinned :class:`~repro.access.snapshots
        .SnapshotView` (or any AtomManager-shaped reader) for the live
        atom manager — the whole traversal then reads one epoch.
        """
        if atoms is None:
            atoms = self.access.atoms
        if cluster is not None and root in cluster.roots():
            fetched: dict[Surrogate, dict[str, Any]] = {}
            label_types = {node.label: node.atom_type
                           for node in cluster.structure.walk()}
            for label, cluster_atoms in cluster.read_cluster(root).items():
                id_attr = self.schema.atom_type(label_types[label]) \
                    .identifier_attr
                for atom in cluster_atoms:
                    fetched[atom[id_attr]] = atom
            self.access.counters.bump("molecules_from_cluster")
            return self._build(structure, root, fetched, atoms=atoms)
        self.access.counters.bump("molecules_from_traversal")
        return self._build(structure, root, None, atoms=atoms)

    def _fetch(self, surrogate: Surrogate,
               fetched: dict[Surrogate, dict[str, Any]] | None,
               atoms: Any) -> dict[str, Any]:
        if fetched is not None and surrogate in fetched:
            return fetched[surrogate]
        return atoms.get(surrogate)

    def _build(self, node: StructureNode, surrogate: Surrogate,
               fetched: dict[Surrogate, dict[str, Any]] | None,
               ancestors: frozenset[Surrogate] = frozenset(),
               atoms: Any = None) -> Molecule:
        if atoms is None:
            atoms = self.access.atoms
        atom = self._fetch(surrogate, fetched, atoms)
        molecule = Molecule(node, atom)
        for child in node.children:
            assert child.via is not None
            attr_type = self.schema.atom_type(node.atom_type) \
                .attr(child.via.source_attr)
            targets = reference_values(attr_type,
                                       atom.get(child.via.source_attr))
            for target in targets:
                if not atoms.exists(target):
                    continue
                if child.recursive:
                    component = self._build_recursive(child, target, fetched,
                                                      ancestors | {surrogate},
                                                      atoms)
                else:
                    component = self._build(child, target, fetched, ancestors,
                                            atoms)
                molecule.add_component(child.label, component)
        return molecule

    def _build_recursive(self, node: StructureNode, surrogate: Surrogate,
                         fetched: dict[Surrogate, dict[str, Any]] | None,
                         ancestors: frozenset[Surrogate],
                         atoms: Any) -> Molecule:
        """Level-wise recursion: expand the incoming association until the
        frontier is exhausted; ancestor atoms stop cycles."""
        atom = self._fetch(surrogate, fetched, atoms)
        molecule = Molecule(node, atom)
        assert node.via is not None
        attr_type = self.schema.atom_type(node.atom_type) \
            .attr(node.via.source_attr)
        targets = reference_values(attr_type, atom.get(node.via.source_attr))
        for target in targets:
            if target in ancestors or target == surrogate:
                continue   # cycle protection
            if not atoms.exists(target):
                continue
            component = self._build_recursive(node, target, fetched,
                                              ancestors | {surrogate}, atoms)
            molecule.add_component(node.label, component)
        # Non-recursive children below the recursion node apply per level.
        for child in node.children:
            assert child.via is not None
            child_type = self.schema.atom_type(node.atom_type) \
                .attr(child.via.source_attr)
            for target in reference_values(child_type,
                                           atom.get(child.via.source_attr)):
                if atoms.exists(target):
                    molecule.add_component(
                        child.label,
                        self._build(child, target, fetched, ancestors, atoms),
                    )
        return molecule

    # -- projection -------------------------------------------------------------------------

    def apply_projection(self, molecule: Molecule, projection: Projection,
                         structure: StructureNode) -> None:
        """Apply a (qualified) projection to one molecule, in place."""
        if projection.select_all:
            return
        keep: dict[str, Any] = {}
        for item in projection.items:
            if item.subquery is not None:
                keep[item.label] = ("qualified", item.subquery)
                continue
            assert item.path is not None
            label, attr = self.validator.resolve_path(
                item.path, structure, allow_label_only=True
            )
            if attr is None:
                keep[label] = "all"
            else:
                entry = keep.get(label)
                if isinstance(entry, set):
                    entry.add(attr)
                elif entry is None:
                    keep[label] = {attr}
                # 'all' swallows attribute items

        # Effective rule per label: explicit items win; a subtree without
        # any explicit rule under an 'all' node inherits 'all'; nodes on
        # the path to a kept node stay as structural glue (identifier
        # only); everything else is pruned.
        effective: dict[str, Any] = {}
        glue: set[str] = set()

        def subtree_has_rule(node: StructureNode) -> bool:
            return node.label in keep or \
                any(subtree_has_rule(child) for child in node.children)

        def assign(node: StructureNode, under_all: bool) -> bool:
            rule = keep.get(node.label)
            if rule is None and under_all and not subtree_has_rule(node):
                rule = "all"
            effective[node.label] = rule
            kept_below = False
            next_under_all = rule == "all"
            for child in node.children:
                if assign(child, next_under_all):
                    kept_below = True
            if rule is None and (kept_below or node.label in keep):
                glue.add(node.label)
            return kept_below or rule is not None

        assign(structure, under_all=False)
        self._project_molecule(molecule, effective, glue)

    def _project_molecule(self, molecule: Molecule, effective: dict[str, Any],
                          glue: set[str]) -> None:
        label = molecule.node.label
        identifier = self.schema.atom_type(molecule.node.atom_type) \
            .identifier_attr
        rule = effective.get(label)
        if rule == "all":
            pass
        elif isinstance(rule, set):
            molecule.atom = {identifier: molecule.atom.get(identifier),
                             **{a: molecule.atom.get(a) for a in sorted(rule)}}
        elif isinstance(rule, tuple) and rule[0] == "qualified":
            subquery: SelectStatement = rule[1]
            if not subquery.projection.select_all:
                attrs = [item.path.parts[-1]
                         for item in subquery.projection.items
                         if item.path is not None]
                molecule.atom = {
                    identifier: molecule.atom.get(identifier),
                    **{a: molecule.atom.get(a) for a in attrs},
                }
        else:
            # structural glue only: identifier
            molecule.atom = {identifier: molecule.atom.get(identifier)}
        for child_label, comps in list(molecule.components.items()):
            child_rule = effective.get(child_label)
            if child_rule is None and child_label not in glue:
                del molecule.components[child_label]
                continue
            if isinstance(child_rule, tuple) and child_rule[0] == "qualified":
                subquery = child_rule[1]
                if subquery.where is not None:
                    comps = [
                        comp for comp in comps
                        if self.evaluator.matches(subquery.where, comp)
                    ]
                    molecule.components[child_label] = comps
            for comp in comps:
                self._project_molecule(comp, effective, glue)

    # ------------------------------------------------------------------- DML --

    def _resolve_ref(self, type_name: str, key: tuple) -> Surrogate | None:
        return self.access.atoms.find_by_key(type_name, key)

    def _resolve_value(self, expr: Expr | list[Expr]) -> Any:
        if isinstance(expr, list):
            return [self._resolve_value(item) for item in expr]
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, EmptyLiteral):
            return []
        if isinstance(expr, RefLookup):
            surrogate = self._resolve_ref(expr.type_name, expr.key)
            if surrogate is None:
                raise ExecutionError(
                    f"REF {expr.type_name}({', '.join(map(repr, expr.key))}) "
                    f"matches no atom"
                )
            return surrogate
        raise ExecutionError(f"unsupported value expression {expr!r}")

    def _insert(self, statement: InsertStatement) -> ResultSet:
        values = {
            attr: self._resolve_value(value)
            for attr, value in statement.assignments
        }
        atom_type = self.schema.atom_type(statement.type_name)
        # EMPTY on a single reference means NULL.
        for attr, value in list(values.items()):
            if value == [] and not hasattr(atom_type.attr(attr), "element"):
                values[attr] = None
        surrogate = self.access.insert(statement.type_name, values)
        return ResultSet(inserted=surrogate, affected=1)

    def _qualifying_molecules(self, from_clause, where) -> tuple[ResultSet, StructureNode]:
        query = SelectStatement(Projection(select_all=True), from_clause,
                                where)
        plan = self.plan_select(query)
        result = self.select(query)
        # DML mutates atoms while walking the result: drain the pipeline
        # before any update so qualification sees the pre-statement state.
        result.materialize()
        return result, plan.structure

    def _delete(self, statement: DeleteStatement) -> ResultSet:
        result, structure = self._qualifying_molecules(
            statement.from_clause, statement.where
        )
        if statement.labels:
            known = set(structure.labels())
            unknown = set(statement.labels) - known
            if unknown:
                raise ValidationError(
                    f"DELETE names unknown labels {sorted(unknown)}"
                )
        id_attrs = {
            node.label: self.schema.atom_type(node.atom_type).identifier_attr
            for node in structure.walk()
        }
        victims: list[Surrogate] = []
        seen: set[Surrogate] = set()
        for molecule in result:
            for label, atom in molecule.atoms():
                if statement.labels and label not in statement.labels:
                    continue
                surrogate = atom[id_attrs[label]]
                if surrogate not in seen:
                    seen.add(surrogate)
                    victims.append(surrogate)
        for surrogate in victims:
            if self.access.atoms.exists(surrogate):
                self.access.delete(surrogate)
        return ResultSet(affected=len(victims))

    def _modify(self, statement: ModifyStatement) -> ResultSet:
        result, structure = self._qualifying_molecules(
            statement.from_clause, statement.where
        )
        if structure.find(statement.label) is None:
            raise ValidationError(
                f"MODIFY names unknown label {statement.label!r}"
            )
        changes = {
            attr: self._resolve_value(value)
            for attr, value in statement.assignments
        }
        node = structure.find(statement.label)
        assert node is not None
        id_attr = self.schema.atom_type(node.atom_type).identifier_attr
        touched: set[Surrogate] = set()
        for molecule in result:
            for label, atom in molecule.atoms():
                if label != statement.label:
                    continue
                surrogate = atom[id_attr]
                if surrogate in touched:
                    continue
                touched.add(surrogate)
                self.access.modify(surrogate, dict(changes))
        return ResultSet(affected=len(touched))


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _signature(node: StructureNode) -> tuple:
    via = node.via.source_attr if node.via is not None else None
    return (
        node.atom_type,
        via,
        node.recursive,
        tuple(sorted(_signature(child) for child in node.children)),
    )


def _range_for(terms: list[tuple[str, str, Any]],
               attr: str) -> KeyCondition | None:
    """Combine the sargable terms on ``attr`` into one key condition.

    Multiple bounds on the same side combine to the *tightest* one
    (max of starts, min of stops); at equal values the exclusive bound
    wins over the inclusive one.  A prepared-statement placeholder may
    stand in for a value: its magnitude is unknown at plan time, so it
    never displaces an already-chosen bound (and is never displaced) —
    the resulting range is a conservative superset, which is correct
    because the full qualification is re-evaluated as the residual
    filter.
    """
    from repro.access.btree import make_key

    def comparable(a: Any, b: Any) -> bool:
        return not (isinstance(a, Parameter) or isinstance(b, Parameter))

    start = stop = None
    include_start = include_stop = True
    found = False
    for term_attr, op, value in terms:
        if term_attr != attr:
            continue
        if op == "=":
            return KeyCondition(start=value, stop=value)
        if op in (">", ">="):
            inclusive = op == ">="
            if start is None or (comparable(value, start) and (
                    make_key(value) > make_key(start) or
                    (make_key(value) == make_key(start) and not inclusive))):
                start, include_start = value, inclusive
            found = True
        elif op in ("<", "<="):
            inclusive = op == "<="
            if stop is None or (comparable(value, stop) and (
                    make_key(value) < make_key(stop) or
                    (make_key(value) == make_key(stop) and not inclusive))):
                stop, include_stop = value, inclusive
            found = True
    if not found:
        return None
    return KeyCondition(start=start, stop=stop,
                        include_start=include_start,
                        include_stop=include_stop)


def _render_bounds(attr: str, condition: KeyCondition) -> str:
    parts = []
    if condition.start is not None:
        op = ">=" if condition.include_start else ">"
        parts.append(f"{attr} {op} {condition.start!r}")
    if condition.stop is not None:
        op = "<=" if condition.include_stop else "<"
        parts.append(f"{attr} {op} {condition.stop!r}")
    return " AND ".join(parts) or attr

