"""Prepared statements, late parameter binding, and the shared plan cache.

PRIMA's engineering workloads are dominated by *repetitive* molecule
queries — a CAD or VLSI tool checks the same molecule shape out over and
over with different key values.  This module makes the per-call frontend
cost of that regime go to ~zero:

* :class:`PreparedStatement` — the product of parsing, validating, and
  planning one MQL statement **once**.  ``execute(*args, **params)``
  binds the placeholder values at pipeline-open time and runs the
  pre-built plan; no lexing, parsing, validation or planning happens on
  the hot path.  Binding is pure substitution over a shared, immutable
  template (:func:`bind_plan`), so one statement object is safely
  re-executed from many serving sessions concurrently.
* :class:`PlanCache` — an LRU of prepared statements keyed on the
  normalized statement text.  It sits under *every* query entry point
  (``Prima.query``/``execute``, serving sessions, ``parallel_select``),
  so even plain repeated-text calls skip parse+plan.
* **Catalog versioning** — every prepared plan records the data
  system's ``catalog_version`` (schema DDL + molecule-type catalog +
  LDL tuning-structure stamps).  A version mismatch at execute time
  transparently re-validates and re-plans the stored AST (counted as
  ``plans_invalidated``), so DDL or a new/dropped tuning structure
  between executions can never run a stale plan — and a *newly created*
  access path is picked up by already-prepared statements.

Sargability survives preparation: the planner treats a placeholder like
a literal when deriving the root access (``repro.data.simplification
.sargable_root_terms``), so a prepared ``WHERE k = ?`` takes the same
KEYS_ARE lookup / B*-tree access path the literal form does — the
concrete key value is substituted into the derived
:class:`~repro.access.multidim.KeyCondition` at bind time, and TopK
bound pushdown applies to the bound pipeline unchanged.

Callers that do not prepare still benefit: :func:`extract_template`
lifts the literals of a plain-text SELECT into positional parameters,
so the data system can key its cache on the statement *shape* — every
literal variant of one checkout query shares a single cached template,
executed through the thin :class:`BoundTemplateStatement` wrapper.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.access.multidim import KeyCondition
from repro.data.plan import QueryPlan, RootAccess
from repro.data.predicates import bind_expr
from repro.data.result import ResultSet
from repro.errors import ExecutionError, PrimaError
from repro.obs.trace import Span, span_from_operator
from repro.mql.ast import (
    DeleteStatement,
    Expr,
    InsertStatement,
    ModifyStatement,
    Parameter,
    Projection,
    ProjectionItem,
    SelectStatement,
    Statement,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.data.executor import DataSystem


# ---------------------------------------------------------------------------
# Parameter discovery: the signature of a statement
# ---------------------------------------------------------------------------

def _expr_parameters(expr: Expr | None) -> Iterator[Parameter]:
    """Every placeholder inside one expression, in traversal order.

    Rides :func:`~repro.data.predicates.bind_expr` with a recording
    resolver, so discovery and substitution share one tree walk — a new
    parameter-bearing node type added to ``bind_expr`` is automatically
    discovered here too (the throwaway bound tree only costs at prepare
    time, never on the execute hot path).
    """
    if expr is None:
        return
    found: list[Parameter] = []

    def record(parameter: Parameter) -> None:
        found.append(parameter)

    bind_expr(expr, record)
    yield from found


def _value_parameters(value: Expr | list[Expr]) -> Iterator[Parameter]:
    if isinstance(value, list):
        for item in value:
            yield from _value_parameters(item)
    else:
        yield from _expr_parameters(value)


def _select_parameters(statement: SelectStatement) -> Iterator[Parameter]:
    for item in statement.projection.items:
        if item.subquery is not None:
            yield from _select_parameters(item.subquery)
    yield from _expr_parameters(statement.where)
    if isinstance(statement.limit, Parameter):
        yield statement.limit
    if isinstance(statement.offset, Parameter):
        yield statement.offset


def iter_parameters(statement: Statement) -> Iterator[Parameter]:
    """Every placeholder of one parsed statement (duplicates included)."""
    if isinstance(statement, SelectStatement):
        yield from _select_parameters(statement)
    elif isinstance(statement, InsertStatement):
        for _attr, value in statement.assignments:
            yield from _value_parameters(value)
    elif isinstance(statement, DeleteStatement):
        yield from _expr_parameters(statement.where)
    elif isinstance(statement, ModifyStatement):
        for _attr, value in statement.assignments:
            yield from _value_parameters(value)
        yield from _expr_parameters(statement.where)


# ---------------------------------------------------------------------------
# Bindings: resolving placeholders to caller-supplied values
# ---------------------------------------------------------------------------

class Bindings:
    """One execution's parameter values: positional args + named params."""

    __slots__ = ("_args", "_named")

    def __init__(self, args: tuple, named: dict[str, Any]) -> None:
        self._args = tuple(args)
        self._named = dict(named)

    def resolve(self, parameter: Parameter) -> Any:
        if parameter.name is not None:
            try:
                return self._named[parameter.name]
            except KeyError:
                raise ExecutionError(
                    f"no value bound for parameter :{parameter.name}"
                ) from None
        index = parameter.index or 0
        if index >= len(self._args):
            raise ExecutionError(
                f"no value bound for positional parameter ?{index + 1}"
            )
        return self._args[index]


# ---------------------------------------------------------------------------
# Binding a plan template: pure substitution, never mutates the template
# ---------------------------------------------------------------------------

def _bind_window(value: Any, resolve: Callable[[Parameter], Any],
                 clause: str) -> Any:
    if not isinstance(value, Parameter):
        return value
    bound = resolve(value)
    if not isinstance(bound, int) or isinstance(bound, bool) or bound < 0:
        raise ExecutionError(
            f"{clause} parameter {value.render()} must bind to a "
            f"non-negative integer, got {bound!r}"
        )
    return bound


def _bind_condition(condition: KeyCondition,
                    resolve: Callable[[Parameter], Any]) -> KeyCondition:
    start, stop = condition.start, condition.stop
    if not isinstance(start, Parameter) and not isinstance(stop, Parameter):
        return condition
    if isinstance(start, Parameter):
        start = resolve(start)
    if isinstance(stop, Parameter):
        stop = resolve(stop)
    return KeyCondition(start=start, stop=stop,
                        include_start=condition.include_start,
                        include_stop=condition.include_stop,
                        descending=condition.descending)


def _bind_root_access(access: RootAccess,
                      resolve: Callable[[Parameter], Any]) -> RootAccess:
    detail = dict(access.detail)
    changed = False
    key = detail.get("key")
    if key is not None and any(isinstance(v, Parameter) for v in key):
        detail["key"] = tuple(resolve(v) if isinstance(v, Parameter) else v
                              for v in key)
        changed = True
    conditions = detail.get("conditions")
    if conditions is not None:
        bound = [_bind_condition(cond, resolve) for cond in conditions]
        if any(new is not old for new, old in zip(bound, conditions)):
            detail["conditions"] = bound
            attr = detail.get("attr")
            if attr is not None:
                from repro.data.executor import _render_bounds
                detail["range"] = _render_bounds(attr, bound[0])
            changed = True
    search = detail.get("search")
    if search and any(isinstance(v, Parameter) for _a, _o, v in search):
        detail["search"] = [
            (a, op, resolve(v) if isinstance(v, Parameter) else v)
            for a, op, v in search
        ]
        changed = True
    if not changed:
        return access
    return RootAccess(access.kind, access.atom_type, detail)


def _bind_projection(projection: Projection,
                     resolve: Callable[[Parameter], Any]) -> Projection:
    if projection.select_all:
        return projection
    changed = False
    items: list[ProjectionItem] = []
    for item in projection.items:
        if item.subquery is not None:
            sub = item.subquery
            where = bind_expr(sub.where, resolve)
            limit = _bind_window(sub.limit, resolve, "LIMIT")
            offset = _bind_window(sub.offset, resolve, "OFFSET")
            if where is not sub.where or limit is not sub.limit \
                    or offset is not sub.offset:
                subquery = replace(sub, where=where, limit=limit,
                                   offset=offset)
                item = ProjectionItem(label=item.label, subquery=subquery)
                changed = True
        items.append(item)
    if not changed:
        return projection
    return Projection(select_all=False, items=items)


def bind_plan(plan: QueryPlan, bindings: Bindings) -> QueryPlan:
    """A concrete, executable plan: the template with values substituted.

    Substitution covers everything execution touches — the residual
    qualification (down into :mod:`repro.data.predicates` evaluation),
    the root access's derived key ranges / KEYS_ARE key / search
    argument (so a bound value keeps the sargable access path), the
    qualified-projection subqueries, and the LIMIT/OFFSET window (a
    bound LIMIT still fuses into TopK with dynamic bound pushdown).
    Parameter-free templates are returned as-is — plans are read-only
    during compilation, so sharing is safe.
    """
    if not plan.parameters:
        return plan
    resolve = bindings.resolve
    limit = _bind_window(plan.limit, resolve, "LIMIT")
    offset = _bind_window(plan.offset, resolve, "OFFSET")
    return replace(
        plan,
        root_access=_bind_root_access(plan.root_access, resolve),
        residual_where=bind_expr(plan.residual_where, resolve),
        projection=_bind_projection(plan.projection, resolve),
        limit=limit,
        offset=offset,
        parameters=(),
    )


def reveto_plan(data: "DataSystem", plan: QueryPlan,
                resolve: Callable[[Parameter], Any]) -> QueryPlan:
    """Re-check the scan-vs-path crossover against bound values.

    A template's access path was chosen *blind* when its range carried a
    placeholder — the statistics could not veto the path at plan time
    (the planner stashed the deferred terms as ``reveto`` in the access
    detail).  Here, at bind time, the concrete literal is known: if the
    estimated selectivity now crosses the A5 threshold, the bound plan
    is demoted to the atom-type scan the literal form would have gotten
    — with the sargable terms pushed down as its search argument, and
    any access-path-served ordering surrendered (the residual
    qualification is untouched, so results are identical either way).
    Counted as ``plans_revetoed``.
    """
    access = plan.root_access
    if access.kind != "access_path":
        return plan
    terms = access.detail.get("reveto")
    if not terms:
        return plan
    bound_terms = [
        (attr, op, resolve(value) if isinstance(value, Parameter) else value)
        for attr, op, value in terms
    ]
    estimate = data.statistics.selectivity(access.atom_type, bound_terms)
    if estimate is None or estimate <= data.scan_threshold:
        return plan
    data.access.counters.bump("plans_revetoed")
    search = [
        (attr, op, resolve(value) if isinstance(value, Parameter) else value)
        for attr, op, value in access.detail.get("fallback_search", ())
    ]
    demoted = RootAccess("atom_type_scan", access.atom_type,
                         {"search": search, "selectivity": estimate})
    return replace(plan, root_access=demoted,
                   order_served_by_access=False, order_prefix_served=0)


def bind_statement(statement: Statement,
                   resolve: Callable[[Parameter], Any]) -> Statement:
    """A DML statement with its placeholder values substituted (DDL and
    parameter-free statements pass through unchanged)."""
    def bind_value(value: Expr | list[Expr]) -> Expr | list[Expr]:
        if isinstance(value, list):
            return [bind_value(item) for item in value]
        return bind_expr(value, resolve)

    if isinstance(statement, InsertStatement):
        assignments = [(attr, bind_value(value))
                       for attr, value in statement.assignments]
        return InsertStatement(statement.type_name, assignments)
    if isinstance(statement, DeleteStatement):
        return DeleteStatement(statement.labels, statement.from_clause,
                               bind_expr(statement.where, resolve))
    if isinstance(statement, ModifyStatement):
        assignments = [(attr, bind_value(value))
                       for attr, value in statement.assignments]
        return ModifyStatement(statement.label, assignments,
                               statement.from_clause,
                               bind_expr(statement.where, resolve))
    return statement


# ---------------------------------------------------------------------------
# Prepared statements
# ---------------------------------------------------------------------------

class PreparedStatement:
    """One MQL statement, parsed / validated / planned exactly once.

    SELECTs carry a catalog-versioned plan template; ``execute()`` binds
    parameters into a fresh plan copy and compiles the operator
    pipeline — re-executions perform **zero** parse/plan work until DDL
    or an LDL tuning-structure change bumps the catalog version, which
    transparently re-plans (``plans_invalidated``).  DML/DDL statements
    skip the plan template (their execution re-qualifies against current
    state by design) but still skip re-parsing.

    Thread-safety: the template ``(plan, version)`` pair is swapped
    atomically under a lock and read as one tuple, and binding never
    mutates shared state — one statement object may be executed from
    many serving sessions concurrently.
    """

    def __init__(self, data: "DataSystem", text: str,
                 statement: Statement) -> None:
        self._data = data
        self.text = text
        self.statement = statement
        positional: set[int] = set()
        names: list[str] = []
        for parameter in iter_parameters(statement):
            if parameter.name is not None:
                if parameter.name not in names:
                    names.append(parameter.name)
            else:
                positional.add(parameter.index or 0)
        #: Number of positional ``?`` slots (the highest index + 1).
        self.param_count = max(positional) + 1 if positional else 0
        #: Named ``:name`` slots, in first-appearance order.
        self.param_names = tuple(names)
        self.kind = "select" if isinstance(statement, SelectStatement) \
            else "statement"
        self._lock = threading.Lock()
        #: (plan template, catalog version) — swapped as one tuple.
        self._state: tuple[QueryPlan | None, int] = (None, -1)
        if self.kind == "select":
            with self._lock:
                self._replan()

    # -- the plan template ----------------------------------------------------

    def _replan(self) -> None:
        """(Re)build the plan template; caller holds ``self._lock``."""
        data = self._data
        version = data.catalog_version
        data._ensure_symmetry()  # noqa: SLF001
        plan = data.plan_select(self.statement)
        data.access.counters.bump("statements_planned")
        self._state = (plan, version)

    def plan(self) -> QueryPlan:
        """The current (unbound) plan template.

        Re-validates and re-plans when the catalog version moved since
        the template was built — a dropped atom type raises here instead
        of executing stale, and a newly created tuning structure is
        picked up.
        """
        if self.kind != "select":
            raise ExecutionError(
                f"{type(self.statement).__name__} has no query plan"
            )
        plan, version = self._state
        if version != self._data.catalog_version:
            with self._lock:
                plan, version = self._state
                if version != self._data.catalog_version:
                    self._data.access.counters.bump("plans_invalidated")
                    self._replan()
                    plan, _version = self._state
        assert plan is not None
        return plan

    @property
    def root_atom_type(self) -> str:
        """Root atom type of the plan (the serving layer's lock scope)."""
        return self.plan().root_access.atom_type

    def dependency_types(self) -> frozenset[str]:
        """The atom types whose commits can change this SELECT's result:
        the root molecule type plus every type the plan's structure tree
        references (the live-query dependency set)."""
        plan = self.plan()
        types = set(plan.structure.atom_types())
        types.add(plan.root_access.atom_type)
        return frozenset(types)

    # -- binding and execution ------------------------------------------------

    def _bindings(self, args: tuple, named: dict[str, Any]) -> Bindings:
        if len(args) != self.param_count:
            raise ExecutionError(
                f"statement takes {self.param_count} positional "
                f"parameter(s), got {len(args)}"
            )
        unknown = set(named) - set(self.param_names)
        if unknown:
            raise ExecutionError(
                f"unknown named parameter(s) {sorted(unknown)}; statement "
                f"declares {sorted(self.param_names)}"
            )
        missing = set(self.param_names) - set(named)
        if missing:
            raise ExecutionError(
                f"no value bound for parameter(s) "
                f"{', '.join(':' + name for name in sorted(missing))}"
            )
        return Bindings(args, named)

    def bind(self, args: tuple = (),
             params: dict[str, Any] | None = None) -> QueryPlan:
        """The concrete plan of one execution (SELECT only).

        Binding also settles the access decisions the template had to
        defer: an access path chosen blind past a placeholder is
        re-checked against the now-concrete values and demoted to a
        scan when the statistics veto it (:func:`reveto_plan`).
        """
        bindings = self._bindings(args, params or {})
        plan = bind_plan(self.plan(), bindings)
        return reveto_plan(self._data, plan, bindings.resolve)

    def bound_statement(self, args: tuple = (),
                        params: dict[str, Any] | None = None) -> Statement:
        """The statement AST with placeholder values substituted."""
        bindings = self._bindings(args, params or {})
        return bind_statement(self.statement, bindings.resolve)

    def execute(self, *args: Any, **params: Any) -> ResultSet:
        """Bind the parameters and run the statement.

        SELECTs return the usual lazy cursor over a freshly compiled
        pipeline; DML binds the AST and executes it.  Counted as
        ``prepared_executions``.
        """
        data = self._data
        data.access.counters.bump("prepared_executions")
        if self.kind == "select":
            plan = self.bind(args, params)
            pipeline = plan.compile(data)
            data.watch_query(self.text, pipeline)
            return ResultSet(source=pipeline, plan_text=plan.explain())
        return data.execute(self.bound_statement(args, params))

    def _trace_plan(self, plan: QueryPlan) -> Span:
        """Compile and drain ``plan`` under a forced trace.

        The returned root span's duration is the wall-time of the whole
        drain; its children are the operator spans, rebuilt from the
        operators' own ``time_total`` / ``rows_out`` measurements."""
        data = self._data
        span = Span("query", attrs={"mql": self.text})
        pipeline = plan.compile(data)
        try:
            while pipeline.next() is not None:
                pass
        finally:
            pipeline.close()
        span.finish()
        span_from_operator(pipeline, parent=span)
        data.obs.observe_query(self.text, span.duration, span)
        return span

    def trace(self, args: tuple = (),
              params: dict[str, Any] | None = None) -> Span:
        """Execute to exhaustion under a forced trace (SELECT only).

        Unlike the sampled tracing of the regular execution path, this
        always produces the span tree — the programmatic twin of
        ``explain(analyze=True)``, and what the TRACE wire message runs
        server-side."""
        if self.kind != "select":
            raise PrimaError("TRACE supports SELECT statements only")
        return self._trace_plan(self.bind(args, params or {}))

    def explain(self, analyze: bool = False, args: tuple = (),
                params: dict[str, Any] | None = None) -> str:
        """The processing plan (SELECT only).

        Without bindings the *template* is rendered — placeholders show
        as ``?n`` / ``:name`` markers.  With bindings (or under
        ``analyze=True``, which must execute the pipeline) the bound
        plan is rendered; ``analyze=True`` additionally renders the
        query's **span tree** (see :meth:`trace`): the root span's
        measured wall-time with one child span per operator carrying
        rows and self/total time.
        """
        if self.kind != "select":
            raise PrimaError("EXPLAIN supports SELECT statements only")
        params = params or {}
        if args or params or (analyze and
                              (self.param_count or self.param_names)):
            plan = self.bind(args, params)
        else:
            plan = self.plan()
        if not analyze:
            return plan.explain()
        span = self._trace_plan(plan)
        lines = [plan.explain(), "  analyzed:"]
        lines.extend("    " + line for line in span.render())
        return "\n".join(lines)

    def __repr__(self) -> str:
        slots = []
        if self.param_count:
            slots.append(f"{self.param_count} positional")
        if self.param_names:
            slots.append(", ".join(":" + n for n in self.param_names))
        inner = f" [{'; '.join(slots)}]" if slots else ""
        return f"PreparedStatement({self.kind}{inner}, {self.text!r})"


# ---------------------------------------------------------------------------
# Auto-parameterization: literal variants of one statement shape
# ---------------------------------------------------------------------------

#: Operators whose right-hand literal is a *value* (liftable).
_COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")


def _literal_at(tokens: list, i: int) -> tuple[Any, int] | None:
    """The literal value starting at token ``i`` and its token width."""
    token = tokens[i]
    if token.kind == "STRING":
        return token.value, 1
    if token.kind == "INT":
        return int(token.value), 1
    if token.kind == "FLOAT":
        return float(token.value), 1
    if token.is_op("-") and tokens[i + 1].kind in ("INT", "FLOAT"):
        nxt = tokens[i + 1]
        value = int(nxt.value) if nxt.kind == "INT" else float(nxt.value)
        return -value, 2
    return None


def _render_token(token: Any) -> str | None:
    """One token back as source text (``None``: not renderable)."""
    if token.kind == "STRING":
        if "'" not in token.value:
            return f"'{token.value}'"
        if '"' not in token.value:
            return f'"{token.value}"'
        return None   # needs both quote kinds — leave this text alone
    return token.value


#: Prefix of the internal named placeholders carrying lifted literals.
#: Named (not positional) so a template coexists with the statement's
#: own explicit ``?`` placeholders without renumbering them.
TEMPLATE_PARAM_PREFIX = "__t"

#: First keywords of templatable statements: SELECT plus the DML verbs
#: (literal variants of an INSERT/DELETE/MODIFY shape share one parsed
#: statement the same way repeated SELECT shapes share one plan).
_TEMPLATE_KINDS = ("SELECT", "INSERT", "DELETE", "MODIFY")


def template_param_name(index: int) -> str:
    """Name of the ``index``-th internal lifted-literal placeholder."""
    return f"{TEMPLATE_PARAM_PREFIX}{index}"


def extract_template(text: str) -> tuple[str, tuple] | None:
    """Lift a statement's value literals into internal parameters.

    Every literal in a *value position* — right of a comparison
    operator (which covers WHERE terms *and* INSERT/MODIFY assignment
    scalars), or an integer after LIMIT/OFFSET — becomes an internal
    named placeholder ``:__tN``; the result is ``(template_text,
    lifted_values)``.  Explicit ``?`` / ``:name`` placeholders already
    in the text pass through untouched, so a half-parameterized
    statement still shares one template for its remaining literals.
    Returns ``None`` when the first keyword is not SELECT / INSERT /
    DELETE / MODIFY, when the text already uses the reserved ``__t``
    name prefix, or when no literal is liftable; the caller then
    proceeds on the ordinary literal path.  The rebuilt template is
    token-equivalent MQL (whitespace-joined), so it parses to the same
    statement shape regardless of the original formatting.
    """
    from repro.mql.lexer import tokenize

    try:
        tokens = tokenize(text)
    except PrimaError:
        return None   # the regular path reports the lexer error
    if not tokens or not tokens[0].is_keyword(*_TEMPLATE_KINDS):
        return None
    rendered: list[str] = []
    values: list[Any] = []
    i = 0
    while tokens[i].kind != "EOF":
        token = tokens[i]
        if token.kind == "IDENT" \
                and token.value.startswith(TEMPLATE_PARAM_PREFIX):
            return None   # reserved prefix already taken by the text
        lifted = None
        if token.is_op(*_COMPARISONS):
            lifted = _literal_at(tokens, i + 1)
        elif token.is_keyword("LIMIT", "OFFSET") \
                and tokens[i + 1].kind == "INT":
            lifted = int(tokens[i + 1].value), 1
        if lifted is not None:
            value, width = lifted
            rendered.append(token.value)
            rendered.append(":" + template_param_name(len(values)))
            values.append(value)
            i += 1 + width
            continue
        piece = _render_token(token)
        if piece is None:
            return None
        rendered.append(piece)
        i += 1
    if not values:
        return None
    return " ".join(rendered), tuple(values)


def template_matches(template: "PreparedStatement",
                     values: tuple) -> bool:
    """Whether a shared template fits these lifted literals: it must
    declare exactly the internal ``__tN`` names the values fill (its
    explicit placeholders — the text's own ``?`` / ``:name`` — remain
    open for the caller)."""
    internal = {name for name in template.param_names
                if name.startswith(TEMPLATE_PARAM_PREFIX)}
    return internal == {template_param_name(i)
                        for i in range(len(values))}


class BoundTemplateStatement:
    """A literal statement riding a shared plan template.

    Presents the :class:`PreparedStatement` execution surface for the
    original text: its lifted literals are bound internally (as the
    reserved ``:__tN`` names) on every call, while any *explicit*
    ``?`` / ``:name`` placeholders the text carried stay open for the
    caller — a half-parameterized statement keeps its public parameter
    surface.  Parse, validation, planning, and catalog-version tracking
    live once in the shared template.  Works for SELECT and the DML
    verbs alike (``kind`` follows the template).
    """

    __slots__ = ("text", "template", "_values", "kind", "param_count",
                 "param_names")

    def __init__(self, text: str, template: PreparedStatement,
                 values: tuple) -> None:
        self.text = text
        self.template = template
        self._values = tuple(values)
        self.kind = template.kind
        self.param_count = template.param_count
        self.param_names = tuple(
            name for name in template.param_names
            if not name.startswith(TEMPLATE_PARAM_PREFIX)
        )

    def _merged(self, params: dict[str, Any] | None) -> dict[str, Any]:
        """Caller-supplied named bindings plus the internal literals."""
        merged = dict(params or {})
        for name in merged:
            if name.startswith(TEMPLATE_PARAM_PREFIX):
                raise ExecutionError(
                    f"parameter name {name!r} is reserved for internally "
                    f"bound literals"
                )
        for index, value in enumerate(self._values):
            merged[template_param_name(index)] = value
        return merged

    @property
    def statement(self) -> Statement:
        return self.template.statement

    def plan(self) -> QueryPlan:
        return self.template.plan()

    @property
    def root_atom_type(self) -> str:
        return self.template.root_atom_type

    def dependency_types(self) -> frozenset[str]:
        return self.template.dependency_types()

    def bind(self, args: tuple = (),
             params: dict[str, Any] | None = None) -> QueryPlan:
        return self.template.bind(args, self._merged(params))

    def bound_statement(self, args: tuple = (),
                        params: dict[str, Any] | None = None) -> Statement:
        return self.template.bound_statement(args, self._merged(params))

    def execute(self, *args: Any, **params: Any) -> ResultSet:
        return self.template.execute(*args, **self._merged(params))

    def explain(self, analyze: bool = False, args: tuple = (),
                params: dict[str, Any] | None = None) -> str:
        return self.template.explain(analyze, args=args,
                                     params=self._merged(params))

    def trace(self, args: tuple = (),
              params: dict[str, Any] | None = None) -> "Span":
        return self.template.trace(args, self._merged(params))

    def __repr__(self) -> str:
        return (f"BoundTemplateStatement({self.kind}, {self.text!r}, "
                f"{len(self._values)} literal(s) bound)")


# ---------------------------------------------------------------------------
# The shared plan cache
# ---------------------------------------------------------------------------

class PlanCache:
    """LRU cache of prepared statements, keyed on normalized text.

    The cache holds :class:`PreparedStatement` objects, which carry
    their own catalog version — staleness is handled by the statement
    (transparent replan), not by eviction, so a cached entry stays
    valid across DDL.  Thread-safe; ``capacity=0`` disables caching.
    """

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[str, PreparedStatement]" = OrderedDict()
        self._lock = threading.Lock()
        #: Entries displaced by the LRU bound so far.
        self.evictions = 0
        #: Template keys seen exactly once — a second sighting promotes
        #: the shared template (see DataSystem auto-parameterization).
        self._template_candidates: set[str] = set()

    def __getstate__(self) -> dict[str, Any]:
        # Locks are not picklable and cached plans hold the whole data
        # system — a persistence checkpoint stores an *empty* cache (it
        # re-fills on first use after load).
        return {"capacity": self.capacity, "evictions": self.evictions}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.capacity = state.get("capacity", 128)
        self.evictions = state.get("evictions", 0)
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self._template_candidates = set()

    #: MQL string literals ('...' or "..."), matched so normalization
    #: never touches whitespace *inside* them.
    _STRING_LITERAL = re.compile(r"('[^']*'|\"[^\"]*\")")

    @classmethod
    def normalize(cls, text: str) -> str:
        """The cache key of one statement text.

        Whitespace outside string literals is collapsed (so formatting
        variants of one statement share a key); literals are kept
        verbatim — ``name = 'a  b'`` and ``name = 'a b'`` are different
        statements and must never share a cached plan.
        """
        parts = cls._STRING_LITERAL.split(text)
        return "".join(
            part if index % 2 else " ".join(part.split())
            for index, part in enumerate(parts)
        )

    def get(self, key: str) -> PreparedStatement | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: str, prepared: PreparedStatement) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = prepared
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def note_template(self, key: str) -> bool:
        """Record a template-key sighting; ``True`` when seen before.

        One-off literal statements never pay the template-parse cost:
        only the *second* distinct literal variant of a shape (its
        template key noted here before) promotes the shared template.
        The candidate set is bounded — overflowing resets it, which only
        delays a promotion by one sighting.
        """
        with self._lock:
            if key in self._template_candidates:
                return True
            if len(self._template_candidates) >= 4 * max(self.capacity, 32):
                self._template_candidates.clear()
            self._template_candidates.add(key)
            return False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._template_candidates.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PlanCache({len(self)}/{self.capacity} entries, "
                f"{self.evictions} evictions)")
