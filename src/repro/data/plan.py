"""Processing plans (paper, 3.1: "query preparation creates a finer
grained processing plan").

A plan records the decisions of the molecule-type-specific optimization:
how the root atoms are accessed (key lookup, access-path scan, sort scan,
or atom-type scan with a pushed-down search argument), whether an atom
cluster materialises the molecule structure, which qualification remains
to be evaluated per molecule, and the result-shaping clauses (ORDER BY,
LIMIT/OFFSET).  ``compile()`` lowers the plan into the physical operator
tree of :mod:`repro.data.operators`; ``explain()`` renders the plan —
including that operator tree — for tests, examples, and benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import ExecutionError
from repro.mad.molecule import StructureNode
from repro.mql.ast import Expr, Parameter, Projection

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.data.executor import DataSystem
    from repro.data.operators import Operator


@dataclass
class RootAccess:
    """How the root atom set is produced."""

    kind: str                     # 'key_lookup' | 'access_path' | 'sort_scan' | 'atom_type_scan'
    atom_type: str
    #: key lookup: the KEYS_ARE value; access path: path name + conditions.
    detail: dict[str, Any] = field(default_factory=dict)

    def explain(self) -> str:
        if self.kind == "key_lookup":
            return (f"KEY LOOKUP {self.atom_type} "
                    f"(key = {self.detail.get('key')!r})")
        if self.kind == "access_path":
            return (f"ACCESS PATH SCAN {self.detail.get('path')} ON "
                    f"{self.atom_type} ({self.detail.get('range')})")
        if self.kind == "sort_scan":
            direction = " DESC" if self.detail.get("reverse") else ""
            return (f"SORT SCAN {self.detail.get('order')} ON "
                    f"{self.atom_type} "
                    f"({', '.join(self.detail.get('attrs', ()))}){direction}")
        terms = self.detail.get("search")
        suffix = f" (search: {terms})" if terms else ""
        return f"ATOM TYPE SCAN {self.atom_type}{suffix}"


@dataclass
class QueryPlan:
    """The full processing plan of one SELECT."""

    structure: StructureNode
    root_access: RootAccess
    cluster_name: str | None          # atom cluster materialising the structure
    residual_where: Expr | None       # evaluated per constructed molecule
    projection: Projection
    recursion_strategy: str = "level-wise"
    #: (root attribute, descending) pairs of the ORDER BY clause.
    order_by: list[tuple[str, bool]] = field(default_factory=list)
    #: True when the root access already delivers the requested order
    #: (possibly by walking a sort order / access path in reverse).
    order_served_by_access: bool = False
    #: Number of leading ORDER BY attributes the root access delivers in
    #: order (a prefix-matching sort scan in either direction) — lets
    #: TopK cut the scan short and feed its tightening heap bound into
    #: the walk as a dynamic stop key.
    order_prefix_served: int = 0
    #: LIMIT n — stop after n molecules (None: unbounded).  A
    #: :class:`~repro.mql.ast.Parameter` defers the bound to bind time.
    limit: "int | Parameter | None" = None
    #: OFFSET m — skip the first m molecules.
    offset: "int | Parameter" = 0
    #: Placeholders of the statement this plan was prepared from.  A
    #: non-empty tuple marks a *template*: values must be substituted by
    #: :func:`repro.data.prepared.bind_plan` before compilation.
    parameters: tuple = ()
    #: Shard-routing annotation, stamped by a cluster coordinator's
    #: planner wrapper (None on single-engine plans).  A dict shaped
    #: ``{"mode": "routed"|"scatter", "shards": n, "key_attr": attr}``:
    #: ``routed`` plans hit exactly the shard owning their root key,
    #: ``scatter`` plans fan out to every shard and gather through the
    #: coordinator's ordered k-way merge.
    routing: dict[str, Any] | None = None

    @property
    def uses_topk(self) -> bool:
        """True when Sort + window fuse into the TopK operator."""
        return bool(self.order_by) and not self.order_served_by_access \
            and self.limit is not None

    def compile(self, data: "DataSystem",
                source: "Operator | None" = None,
                use_topk: bool = True,
                push_bound: bool = True,
                snapshot: "Any | None" = None) -> "Operator":
        """Lower this plan into its physical operator tree.

        ``use_topk=False`` compiles the Sort/Offset/Limit stack even when
        TopK applies — the full-sort baseline for benchmarks.
        ``push_bound=False`` keeps TopK but disconnects its dynamic heap
        bound from the root scan (the delivery-time early exit remains) —
        the bound-pushdown baseline.  ``snapshot`` pins every read of the
        pipeline to one atom-version epoch (the lock-free serving read
        path).

        A plan *template* (prepared statement with placeholders) cannot
        compile — bind it first (:func:`repro.data.prepared.bind_plan`).
        """
        if self.parameters:
            markers = ", ".join(sorted({p.render()
                                        for p in self.parameters}))
            raise ExecutionError(
                f"plan has unbound parameter(s) {markers} — execute "
                f"through a prepared statement with bindings"
            )
        from repro.data.operators import build_pipeline
        return build_pipeline(data, self, source=source, use_topk=use_topk,
                              push_bound=push_bound, snapshot=snapshot)

    def operator_descriptions(self) -> list[tuple[str, str]]:
        """(name, detail) pairs of the pipeline, top operator first.

        This is the declarative twin of :func:`repro.data.operators
        .build_pipeline`: the same canonical shape, renderable without a
        data system at hand.
        """
        operators: list[tuple[str, str]] = []
        if self.projection.select_all:
            operators.append(("Project", "ALL"))
        else:
            operators.append(
                ("Project", f"{len(self.projection.items)} item(s)")
            )
        rendered = ", ".join(
            f"{attr} {'DESC' if desc else 'ASC'}"
            for attr, desc in self.order_by
        )
        if self.uses_topk:
            suffix = (f"; input ordered on first {self.order_prefix_served}"
                      f" — dynamic scan bound"
                      if self.order_prefix_served else "")
            operators.append((
                "TopK",
                f"k={self.limit}, offset={self.offset}; {rendered} — "
                f"bounded heap{suffix}",
            ))
        else:
            if self.limit is not None:
                operators.append(("Limit", str(self.limit)))
            if self.offset:
                operators.append(("Offset", str(self.offset)))
            if self.order_by and not self.order_served_by_access:
                operators.append(("Sort", f"{rendered} — pipeline breaker"))
        if self.residual_where is not None:
            operators.append(
                ("ResidualFilter", "residual qualification per molecule")
            )
        if self.cluster_name is not None:
            operators.append(
                ("MoleculeConstruct", f"from atom cluster {self.cluster_name}")
            )
        else:
            operators.append(("MoleculeConstruct", "association traversal"))
        operators.append(("RootScan", self.root_access.explain()))
        return operators

    def explain(self) -> str:
        lines = [f"MOLECULE TYPE SCAN {self.structure!r}"]
        if self.routing is not None:
            mode = self.routing.get("mode", "scatter")
            shards = self.routing.get("shards")
            if mode == "routed":
                detail = (f"routed to 1 of {shards} shard(s) by "
                          f"{self.routing.get('key_attr')}")
            else:
                detail = (f"scatter to {shards} shard(s), "
                          f"ordered k-way merge gather")
            lines.append(f"  routing: {detail}")
        lines.append(f"  root: {self.root_access.explain()}")
        if self.cluster_name is not None:
            lines.append(
                f"  construction: ATOM CLUSTER {self.cluster_name} "
                f"(one page-sequence transfer per molecule)"
            )
        else:
            lines.append("  construction: association traversal (base records)")
        if any(node.recursive for node in self.structure.walk()):
            lines.append(f"  recursion: {self.recursion_strategy}")
        if self.residual_where is not None:
            lines.append("  select: residual qualification per molecule")
        if self.order_by:
            rendered = ", ".join(
                f"{attr} {'DESC' if desc else 'ASC'}"
                for attr, desc in self.order_by
            )
            if self.order_served_by_access:
                how = "from the sort order (free"
                if self.root_access.detail.get("reverse"):
                    how += ", reverse scan"
                how += ")"
            elif self.uses_topk:
                how = "top-k bounded heap"
                if self.order_prefix_served:
                    direction = "reverse " \
                        if self.root_access.detail.get("reverse") else ""
                    how += (f" (order_prefix_served="
                            f"{self.order_prefix_served}, dynamic bound "
                            f"into the {direction}scan)")
            else:
                how = "explicit final sort"
            lines.append(f"  order: {rendered} — {how}")
        if self.limit is not None or self.offset:
            parts = []
            if self.limit is not None:
                parts.append(f"limit {self.limit}")
            if self.offset:
                parts.append(f"offset {self.offset}")
            if self.uses_topk:
                parts.append("fused into TopK")
            lines.append(f"  window: {', '.join(parts)}")
        if self.projection.select_all:
            lines.append("  project: ALL")
        else:
            lines.append(f"  project: {len(self.projection.items)} item(s)")
        lines.append("  pipeline:")
        for depth, (name, detail) in enumerate(self.operator_descriptions()):
            indent = "    " + "  " * depth
            lines.append(f"{indent}{name} ({detail})" if detail
                         else f"{indent}{name}")
        return "\n".join(lines)
