"""Result sets: what the data system hands back across the MAD interface.

A result set is a set of molecules (heterogeneous record sets) plus the
plan that produced it; the one-molecule-at-a-time interface of the paper's
molecule management maps onto iteration.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.mad.molecule import Molecule
from repro.mad.types import Surrogate


class ResultSet:
    """An ordered set of molecules (or DML outcome)."""

    def __init__(self, molecules: list[Molecule] | None = None,
                 plan_text: str = "", affected: int = 0,
                 inserted: Surrogate | None = None) -> None:
        self.molecules = molecules if molecules is not None else []
        self.plan_text = plan_text
        #: Atoms touched by a DML statement.
        self.affected = affected
        #: Surrogate produced by an INSERT.
        self.inserted = inserted

    def __len__(self) -> int:
        return len(self.molecules)

    def __iter__(self) -> Iterator[Molecule]:
        return iter(self.molecules)

    def __getitem__(self, index: int) -> Molecule:
        return self.molecules[index]

    def to_dicts(self) -> list[dict[str, Any]]:
        """Plain-data rendering of every molecule."""
        return [m.to_dict() for m in self.molecules]

    def atom_count(self) -> int:
        """Distinct atoms across all molecules in the set."""
        seen: set[Surrogate] = set()

        def visit(molecule: Molecule) -> None:
            seen.add(molecule.surrogate)
            for comps in molecule.components.values():
                for comp in comps:
                    visit(comp)

        for molecule in self.molecules:
            visit(molecule)
        return len(seen)

    def __repr__(self) -> str:
        if self.inserted is not None:
            return f"ResultSet(inserted={self.inserted})"
        if self.affected:
            return f"ResultSet(affected={self.affected})"
        return f"ResultSet({len(self.molecules)} molecules)"
