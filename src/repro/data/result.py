"""Result sets: what the data system hands back across the MAD interface.

A result set is a **cursor** over the physical operator pipeline: the
paper's molecule management hands molecules to the application one at a
time, and iteration over a :class:`ResultSet` pulls molecules on demand
from the compiled operator tree — the first molecule arrives before the
root scan is exhausted, and abandoning the iteration cancels the rest of
the work.

Cursor contract:

* ``for molecule in result`` streams lazily; consumed molecules are
  cached, so iterating twice is safe and yields the same sequence.
* ``len(result)``, negative/slice indexing, ``to_dicts()`` and
  ``atom_count()`` materialise the remainder on demand.
* ``result[i]`` with ``i >= 0`` materialises only the first ``i + 1``
  molecules.
* ``fetch_next()`` is the explicit one-molecule-at-a-time interface
  (returns None at end); it works on eager sets (DML outcomes,
  parallel results) too.  ``close()`` abandons the pipeline early.
* ``reopen()`` restarts the cursor from the beginning: the pipeline is
  rewound and re-executed against the current database state — except
  that pipeline breakers (Sort, TopK) replay their cached run, so a
  re-opened ORDER BY result does not re-construct or re-sort.  A set
  whose pipeline was explicitly ``close()``-d **before it was fully
  fetched** is truncated for good: ``reopen()`` and the whole-set
  accessors (``len()``, ``to_dicts()``, ``materialize()``, slicing)
  raise :class:`~repro.errors.CursorStateError` instead of presenting
  the partial fetch cache as the complete result; the streaming
  interface keeps serving the cached prefix.  Closing after the last
  molecule was fetched — even without pulling the terminal None — is
  not a truncation (``close()`` probes the pipeline once to decide),
  and ``reopen()`` stays legal over the complete cache.
* Molecules are delivered against the root scan's opening snapshot:
  atoms deleted while the cursor is open are skipped at delivery time
  (the scan position-maintenance contract, paper 3.2).  Callers that
  mutate mid-result should drain the cursor first (DML statements and
  ``execute_script`` do so automatically).

The ``source`` of a lazy set is anything honouring the operator cursor
protocol — ``next()``/``close()``/``rewind()``.  Besides the physical
operator pipeline that is, notably, a :class:`repro.serve.RemoteCursor`:
the serving layer wraps a remote streaming cursor in a ResultSet, so the
client-side cursor contract above (including close-while-pending
truncation, which then propagates to the server's pipeline) holds
unchanged across the coupling network.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import CursorStateError
from repro.mad.molecule import Molecule
from repro.mad.types import Surrogate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.data.operators import Operator


class ResultSet:
    """An ordered set of molecules (or DML outcome), delivered lazily."""

    def __init__(self, molecules: list[Molecule] | None = None,
                 plan_text: str = "", affected: int = 0,
                 inserted: Surrogate | None = None,
                 source: "Operator | None" = None) -> None:
        #: Molecules pulled from the pipeline (or given eagerly) so far.
        self._fetched: list[Molecule] = \
            list(molecules) if molecules is not None else []
        #: The operator pipeline still to be drained (None: materialised).
        self._source = source
        #: The pipeline kept across exhaustion so ``reopen()`` can rewind
        #: it (dropped by an explicit ``close()``).
        self._pipeline = source
        #: Position of the explicit fetch_next() cursor in ``_fetched``.
        self._fetch_pos = 0
        #: True when close() abandoned the pipeline before it was fully
        #: fetched — the cache is a truncated prefix, not the set.
        self._truncated = False
        self.plan_text = plan_text
        #: Atoms touched by a DML statement.
        self.affected = affected
        #: Surrogate produced by an INSERT.
        self.inserted = inserted

    # -- the cursor ---------------------------------------------------------

    def _pull(self) -> Molecule | None:
        """Draw one molecule from the pipeline into the cache (does not
        move the ``fetch_next()`` cursor)."""
        if self._source is None:
            return None
        molecule = self._source.next()
        if molecule is None:
            # Natural exhaustion: the cursor is done, but the pipeline is
            # kept (un-closed) so ``reopen()`` can rewind it.
            self._source = None
            return None
        self._fetched.append(molecule)
        return molecule

    def fetch_next(self) -> Molecule | None:
        """Deliver the next molecule of the set (None at end).

        Advances through already-fetched (or eagerly-given) molecules
        first, then pulls from the pipeline.  Iteration, indexing and
        ``materialize()`` do not move this cursor.
        """
        if self._fetch_pos >= len(self._fetched):
            self._pull()
        if self._fetch_pos < len(self._fetched):
            molecule = self._fetched[self._fetch_pos]
            self._fetch_pos += 1
            return molecule
        return None

    def fetch_many(self, count: int) -> list[Molecule]:
        """Deliver up to ``count`` molecules through the explicit cursor.

        The batch-shaped twin of :meth:`fetch_next` — the serving layer's
        FETCH(n) message is one call.  A batch shorter than ``count``
        means the set is exhausted; an empty batch at the end is legal.
        """
        batch: list[Molecule] = []
        for _ in range(count):
            molecule = self.fetch_next()
            if molecule is None:
                break
            batch.append(molecule)
        return batch

    def on_close(self, hook) -> None:
        """Register a cursor-release hook on the underlying pipeline.

        The hook runs once, when the pipeline is explicitly closed (an
        eager set has no pipeline — the hook is dropped).  See
        :meth:`repro.data.operators.Operator.add_close_hook`.
        """
        if self._pipeline is not None:
            self._pipeline.add_close_hook(hook)

    def close(self) -> None:
        """Abandon the pipeline; already-fetched molecules stay available
        through the cursor interface (``fetch_next()``, iteration).

        Unlike natural exhaustion, an explicit close releases the operator
        tree for good.  Closing while molecules were still pending marks
        the set **truncated**: the fetch cache is a prefix of the result,
        and ``reopen()`` / the whole-set accessors (``len()``,
        ``to_dicts()``, ...) will refuse to present it as the complete
        set.  Whether molecules were pending is decided by one bounded
        probe of the pipeline — a cursor that consumed every molecule but
        never pulled the terminal None is complete, not truncated (the
        probed molecule, if any, joins the cache).  A source that can
        answer ``has_pending()`` (a remote cursor, whose probe would cost
        a network round trip and ahead-of-need construction) is asked
        instead of pulled."""
        if self._source is not None:
            pending: bool | None = None
            has_pending = getattr(self._source, "has_pending", None)
            if has_pending is not None:
                pending = has_pending()
            if pending is None:
                probe = self._source.next()
                if probe is not None:
                    self._fetched.append(probe)
                    self._truncated = True
            elif pending:
                self._truncated = True
        if self._pipeline is not None:
            self._pipeline.close()
            self._pipeline = None
        self._source = None

    @property
    def truncated(self) -> bool:
        """True when an explicit ``close()`` abandoned unfetched
        molecules — the cache holds a prefix, not the set."""
        return self._truncated

    def reopen(self) -> None:
        """Restart the cursor at the first molecule of the set.

        Lazy sets rewind and re-execute the pipeline (dropping the fetch
        cache); pipeline breakers replay their cached run, so an ORDER BY
        result re-opens without re-constructing or re-sorting.  Eager
        sets — and sets closed only *after* they were fully fetched —
        just reset the ``fetch_next()`` cursor over the complete cache.

        Raises :class:`~repro.errors.CursorStateError` on a set that was
        explicitly closed while partially fetched: its cache is a
        truncated prefix and must not masquerade as the result.
        """
        if self._truncated:
            raise CursorStateError(
                "cannot reopen a result set that was closed before it "
                "was fully fetched — the cursor cache holds only "
                f"{len(self._fetched)} molecule(s) of a longer result"
            )
        if self._pipeline is not None:
            self._pipeline.rewind()
            self._source = self._pipeline
            self._fetched.clear()
        self._fetch_pos = 0

    @property
    def exhausted(self) -> bool:
        """True once the pipeline is fully drained (or was never lazy)."""
        return self._source is None

    def materialize(self) -> list[Molecule]:
        """Drain the pipeline; returns the complete molecule list.

        Does not advance the ``fetch_next()`` cursor — materialising is
        transparent to the explicit one-molecule-at-a-time interface.

        Raises :class:`~repro.errors.CursorStateError` on a truncated
        set (explicitly closed while molecules were pending): the cache
        is a prefix and cannot be completed.  The streaming interface
        (``fetch_next()``, iteration) still serves that prefix.
        """
        if self._truncated:
            raise CursorStateError(
                "cannot materialize a result set that was closed before "
                "it was fully fetched — only the "
                f"{len(self._fetched)}-molecule prefix is available "
                "(via fetch_next()/iteration)"
            )
        while self._pull() is not None:
            pass
        return self._fetched

    @property
    def molecules(self) -> list[Molecule]:
        """The complete molecule list (materialises the remainder)."""
        return self.materialize()

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.materialize())

    def __iter__(self) -> Iterator[Molecule]:
        index = 0
        while True:
            if index < len(self._fetched):
                yield self._fetched[index]
                index += 1
            elif self._pull() is None:
                return

    def __getitem__(self, index: int | slice) -> Molecule | list[Molecule]:
        if isinstance(index, slice):
            return self.materialize()[index]
        if index >= 0:
            while len(self._fetched) <= index and self._pull() is not None:
                pass
            return self._fetched[index]
        return self.materialize()[index]

    def to_dicts(self) -> list[dict[str, Any]]:
        """Plain-data rendering of every molecule."""
        return [m.to_dict() for m in self.materialize()]

    def atom_count(self) -> int:
        """Distinct atoms across all molecules in the set."""
        seen: set[Surrogate] = set()

        def visit(molecule: Molecule) -> None:
            seen.add(molecule.surrogate)
            for comps in molecule.components.values():
                for comp in comps:
                    visit(comp)

        for molecule in self.materialize():
            visit(molecule)
        return len(seen)

    def __repr__(self) -> str:
        if self.inserted is not None:
            return f"ResultSet(inserted={self.inserted})"
        if self.affected:
            return f"ResultSet(affected={self.affected})"
        if self._source is not None:
            return f"ResultSet(streaming, {len(self._fetched)} fetched)"
        return f"ResultSet({len(self._fetched)} molecules)"
